package ninep

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// AttachFunc resolves an attach request to the root of a served tree.
// It is how a server decides what uname sees for a given attach name —
// exportfs, for example, re-roots at the requested path of the
// exporting process's name space.
type AttachFunc func(uname, aname string) (vfs.Node, error)

// Server serves a file tree over 9P. It is multithreaded in the way
// the paper requires of exportfs (§6.1): each request runs in its own
// goroutine because open, read, and write may block (a read on a
// listen file blocks until a call arrives), and Tflush lets a client
// abandon a blocked request.
type Server struct {
	conn   MsgConn
	attach AttachFunc
	ck     vclock.Clock

	wmu sync.Mutex // serializes response writes

	mu   sync.Mutex
	fids map[uint32]*srvFid
	reqs map[uint16]*srvReq // requests in flight, by tag
}

// srvReq tracks one in-flight request. Flush state lives on the
// request instance, never in a map keyed by tag alone: after the
// 16-bit tag space wraps, a recycled tag can name a new request while
// a flushed predecessor's goroutine is still running (blocked in
// h.Read, say), and each instance must see only its own flush mark —
// a shared per-tag entry would let the new request consume the old
// one's mark and the old request answer under the new one's tag.
type srvReq struct {
	flushed atomic.Bool
}

type srvFid struct {
	mu   sync.Mutex
	node vfs.Node
	h    vfs.Handle
	open bool
	mode int

	// With a pipelining client, several Treads (or Twrites) for one
	// fid can be in their goroutines at once; on a delimited or
	// stream device the order they reach the handle is the order the
	// data comes off (or goes onto) the stream. Each direction gets
	// a ticket queue: tickets are taken in the Serve loop, in wire
	// arrival order, and each request waits its turn before touching
	// the handle. Reads and writes queue independently so a read
	// blocked on an idle stream never holds up the writes that would
	// unblock it.
	rq, wq ticketQ
}

// ticketQ serializes requests in ticket order: take in arrival order,
// wait your turn, done when finished.
type ticketQ struct {
	mu         sync.Mutex
	cond       vclock.Cond
	inited     bool
	next, turn uint64
}

func (q *ticketQ) take() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.next
	q.next++
	return t
}

func (q *ticketQ) wait(t uint64, ck vclock.Clock) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.turn != t {
		if !q.inited {
			q.cond.Init(ck, &q.mu)
			q.inited = true
		}
		q.cond.Wait()
	}
}

func (q *ticketQ) done() {
	q.mu.Lock()
	q.turn++
	if q.inited {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// Serve runs a 9P server on conn until the transport fails or the
// client goes away. It returns the transport error (io.EOF for a
// clean close).
func Serve(conn MsgConn, attach AttachFunc) error {
	return ServeClock(conn, attach, nil)
}

// ServeClock is Serve with an explicit clock driving the per-request
// goroutines; nil means the real clock.
func ServeClock(conn MsgConn, attach AttachFunc, ck vclock.Clock) error {
	s := &Server{
		conn:   conn,
		attach: attach,
		ck:     vclock.Or(ck),
		fids:   make(map[uint32]*srvFid),
		reqs:   make(map[uint16]*srvReq),
	}
	defer s.cleanup()
	for {
		msg, err := conn.ReadMsg()
		if err != nil {
			return err
		}
		f, err := UnmarshalFcall(msg)
		// UnmarshalFcall copies everything it keeps, so the wire
		// buffer goes back to the pool either way.
		block.PutBytes(msg)
		if err != nil {
			return err
		}
		switch f.Type {
		case Tnop, Tsession, Tauth, Tflush:
			// Control messages are answered synchronously so a
			// Tflush can never be overtaken by the work it
			// flushes.
			s.respond(f.Tag, s.process(f), nil)
		default:
			// I/O requests take a per-fid, per-direction ticket
			// here, in wire arrival order, so their goroutines
			// reach the handle in the order the client issued
			// them even when a windowed transfer has several in
			// flight.
			var tq *ticketQ
			var ticket uint64
			if f.Type == Tread || f.Type == Twrite {
				s.mu.Lock()
				if sf := s.fids[f.Fid]; sf != nil {
					if f.Type == Tread {
						tq = &sf.rq
					} else {
						tq = &sf.wq
					}
				}
				s.mu.Unlock()
				if tq != nil {
					ticket = tq.take()
				}
			}
			// Register the request instance. A stale instance may
			// still occupy the tag (flushed, its goroutine not yet
			// done); the client has seen its Rflush, so the tag is
			// legitimately recycled and the new instance simply
			// takes over the slot.
			st := &srvReq{}
			s.mu.Lock()
			s.reqs[f.Tag] = st
			s.mu.Unlock()
			s.ck.Go(func() {
				var r *Fcall
				if tq != nil {
					tq.wait(ticket, s.ck)
					// A request flushed while queued must not
					// touch the handle: on a delimited or
					// stream device the read would consume
					// data the client has already abandoned.
					if !st.flushed.Load() {
						r = s.process(f)
					}
					tq.done()
				} else if !st.flushed.Load() {
					r = s.process(f)
				}
				if r != nil {
					s.respond(f.Tag, r, st)
				}
				s.mu.Lock()
				if s.reqs[f.Tag] == st {
					delete(s.reqs, f.Tag)
				}
				s.mu.Unlock()
			})
		}
	}
}

func (s *Server) cleanup() {
	s.mu.Lock()
	fids := s.fids
	s.fids = make(map[uint32]*srvFid)
	s.mu.Unlock()
	for _, sf := range fids {
		sf.mu.Lock()
		if sf.open && sf.h != nil {
			sf.h.Close()
		}
		sf.mu.Unlock()
	}
}

// respond writes r under tag. st, non-nil for I/O requests, carries
// the request's flush mark: the check sits under wmu, the same lock
// that wrote the Rflush, so either the reply reaches the wire before
// the Rflush (permitted — the client still holds the tag reserved
// until Rflush arrives and drops the raced reply) or the mark is
// visible and the reply is suppressed. A reply for a flushed tag can
// therefore never follow its Rflush onto the wire, which is what lets
// the client recycle a tag the moment Rflush is delivered.
func (s *Server) respond(tag uint16, r *Fcall, st *srvReq) {
	r.Tag = tag
	msg, err := MarshalFcall(r)
	if err != nil {
		msg, _ = MarshalFcall(&Fcall{Type: Rerror, Tag: tag, Ename: err.Error()})
	}
	if r.recycle != nil {
		// MarshalFcall copied Data into msg; the pooled read
		// buffer behind it goes back now.
		block.PutBytes(r.recycle)
		r.recycle, r.Data = nil, nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if st != nil && st.flushed.Load() {
		// The reply of a flushed request is dropped; its pooled
		// wire buffer is not.
		block.PutBytes(msg)
		return
	}
	s.conn.WriteMsg(msg)
}

func rerror(err error) *Fcall {
	e := err.Error()
	if len(e) >= ErrLen {
		e = e[:ErrLen-1]
	}
	return &Fcall{Type: Rerror, Ename: e}
}

func (s *Server) getFid(fid uint32) (*srvFid, *Fcall) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sf, ok := s.fids[fid]
	if !ok {
		return nil, rerror(fmt.Errorf("unknown fid %d", fid))
	}
	return sf, nil
}

func (s *Server) process(t *Fcall) *Fcall {
	switch t.Type {
	case Tnop:
		return &Fcall{Type: Rnop}
	case Tsession:
		return &Fcall{Type: Rsession, Chal: t.Chal}
	case Tauth:
		// Toy authentication: echo a ticket derived from the uname.
		return &Fcall{Type: Rauth, Chal: "ticket-" + t.Uname}
	case Tflush:
		// Mark the in-flight instance before the Rflush is written
		// (respond checks the mark under wmu): once the Rflush is on
		// the wire, no reply for oldtag can follow it. If the request
		// already answered, there is nothing to abort; if it is still
		// blocked in a handle, its eventual reply is suppressed and
		// its slot in reqs is reclaimed by comparing instances.
		s.mu.Lock()
		st := s.reqs[t.Oldtag]
		s.mu.Unlock()
		if st != nil {
			st.flushed.Store(true)
		}
		return &Fcall{Type: Rflush}
	case Tattach:
		root, err := s.attach(t.Uname, t.Aname)
		if err != nil {
			return rerror(err)
		}
		d, err := root.Stat()
		if err != nil {
			return rerror(err)
		}
		s.mu.Lock()
		if _, dup := s.fids[t.Fid]; dup {
			s.mu.Unlock()
			return rerror(vfs.ErrInUse)
		}
		s.fids[t.Fid] = &srvFid{node: root}
		s.mu.Unlock()
		return &Fcall{Type: Rattach, Fid: t.Fid, Qid: d.Qid}
	case Tclone:
		sf, e := s.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		if sf.open {
			sf.mu.Unlock()
			return rerror(vfs.ErrBadUseFd)
		}
		node := sf.node
		sf.mu.Unlock()
		s.mu.Lock()
		if _, dup := s.fids[t.Newfid]; dup {
			s.mu.Unlock()
			return rerror(vfs.ErrInUse)
		}
		s.fids[t.Newfid] = &srvFid{node: node}
		s.mu.Unlock()
		return &Fcall{Type: Rclone, Fid: t.Fid}
	case Twalk:
		sf, e := s.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		defer sf.mu.Unlock()
		if sf.open {
			return rerror(vfs.ErrBadUseFd)
		}
		n, err := sf.node.Walk(t.Name)
		if err != nil {
			return rerror(err)
		}
		d, err := n.Stat()
		if err != nil {
			return rerror(err)
		}
		sf.node = n
		return &Fcall{Type: Rwalk, Fid: t.Fid, Qid: d.Qid}
	case Tclwalk:
		sf, e := s.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		if sf.open {
			sf.mu.Unlock()
			return rerror(vfs.ErrBadUseFd)
		}
		n, err := sf.node.Walk(t.Name)
		sf.mu.Unlock()
		if err != nil {
			return rerror(err)
		}
		d, err := n.Stat()
		if err != nil {
			return rerror(err)
		}
		s.mu.Lock()
		if _, dup := s.fids[t.Newfid]; dup {
			s.mu.Unlock()
			return rerror(vfs.ErrInUse)
		}
		s.fids[t.Newfid] = &srvFid{node: n}
		s.mu.Unlock()
		return &Fcall{Type: Rclwalk, Fid: t.Newfid, Qid: d.Qid}
	case Topen:
		sf, e := s.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		defer sf.mu.Unlock()
		if sf.open {
			return rerror(vfs.ErrBadUseFd)
		}
		h, err := sf.node.Open(int(t.Mode))
		if err != nil {
			return rerror(err)
		}
		d, err := sf.node.Stat()
		if err != nil {
			h.Close()
			return rerror(err)
		}
		sf.h, sf.open, sf.mode = h, true, int(t.Mode)
		return &Fcall{Type: Ropen, Fid: t.Fid, Qid: d.Qid}
	case Tcreate:
		sf, e := s.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		defer sf.mu.Unlock()
		if sf.open {
			return rerror(vfs.ErrBadUseFd)
		}
		cr, ok := sf.node.(vfs.Creator)
		if !ok {
			return rerror(vfs.ErrPerm)
		}
		n, h, err := cr.Create(t.Name, t.Perm, int(t.Mode))
		if err != nil {
			return rerror(err)
		}
		d, err := n.Stat()
		if err != nil {
			h.Close()
			return rerror(err)
		}
		sf.node, sf.h, sf.open, sf.mode = n, h, true, int(t.Mode)
		return &Fcall{Type: Rcreate, Fid: t.Fid, Qid: d.Qid}
	case Tread:
		sf, e := s.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		h, open := sf.h, sf.open
		sf.mu.Unlock()
		if !open {
			return rerror(vfs.ErrBadUseFd)
		}
		if t.Count > MaxFData {
			return rerror(ErrDataLen)
		}
		buf := block.GetBytes(int(t.Count))
		n, err := h.Read(buf, t.Offset)
		if err != nil {
			block.PutBytes(buf)
			return rerror(err)
		}
		return &Fcall{Type: Rread, Fid: t.Fid, Data: buf[:n], recycle: buf}
	case Twrite:
		sf, e := s.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		h, open := sf.h, sf.open
		sf.mu.Unlock()
		if !open {
			return rerror(vfs.ErrBadUseFd)
		}
		n, err := h.Write(t.Data, t.Offset)
		if err != nil {
			return rerror(err)
		}
		return &Fcall{Type: Rwrite, Fid: t.Fid, Count: uint16(n)}
	case Tclunk, Tremove:
		s.mu.Lock()
		sf, ok := s.fids[t.Fid]
		delete(s.fids, t.Fid)
		s.mu.Unlock()
		if !ok {
			return rerror(fmt.Errorf("unknown fid %d", t.Fid))
		}
		sf.mu.Lock()
		if sf.open && sf.h != nil {
			sf.h.Close()
		}
		var err error
		if t.Type == Tremove {
			if rm, ok := sf.node.(vfs.Remover); ok {
				err = rm.Remove()
			} else {
				err = vfs.ErrPerm
			}
		}
		sf.mu.Unlock()
		if err != nil {
			return rerror(err)
		}
		if t.Type == Tremove {
			return &Fcall{Type: Rremove, Fid: t.Fid}
		}
		return &Fcall{Type: Rclunk, Fid: t.Fid}
	case Tstat:
		sf, e := s.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		node := sf.node
		sf.mu.Unlock()
		d, err := node.Stat()
		if err != nil {
			return rerror(err)
		}
		return &Fcall{Type: Rstat, Fid: t.Fid, Stat: d}
	case Twstat:
		sf, e := s.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		node := sf.node
		sf.mu.Unlock()
		w, ok := node.(vfs.Wstater)
		if !ok {
			return rerror(vfs.ErrPerm)
		}
		if err := w.Wstat(t.Stat); err != nil {
			return rerror(err)
		}
		return &Fcall{Type: Rwstat, Fid: t.Fid}
	default:
		return rerror(ErrBadType)
	}
}
