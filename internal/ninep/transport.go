package ninep

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/vclock"
)

// MsgConn is a duplex transport that preserves message delimiters, the
// property 9P requires of its transport (§2.1). IL conversations and
// in-machine pipes provide it natively; byte streams such as TCP are
// adapted with NewStreamConn.
//
// Buffer discipline: WriteMsg takes ownership of p — the caller never
// touches it afterwards — and ReadMsg hands ownership of the returned
// buffer to the caller, who releases it with block.PutBytes once the
// message is decoded (UnmarshalFcall copies what it keeps).
type MsgConn interface {
	// ReadMsg returns the next whole message; the caller owns it.
	ReadMsg() ([]byte, error)
	// WriteMsg sends p as one message, taking ownership of p.
	WriteMsg(p []byte) error
	// Close tears the transport down; pending readers fail.
	Close() error
}

// ErrConnClosed reports I/O on a closed transport.
var ErrConnClosed = errors.New("9P: connection closed")

// pipe is an in-process MsgConn pair, the analogue of mounting a pipe
// to a user-level file server.
type pipe struct {
	in     *vclock.Mailbox[[]byte]
	out    *vclock.Mailbox[[]byte]
	closed atomic.Bool
	peer   *pipe
	once   sync.Once
}

// NewPipe returns two connected MsgConns. Messages written to one are
// read from the other, in order, with delimiters preserved. The buffer
// itself crosses the pipe: WriteMsg transfers ownership of its argument
// to the reading side, with no copy in between.
func NewPipe() (MsgConn, MsgConn) {
	return NewPipeClock(nil)
}

// NewPipeClock is NewPipe on an explicit clock; nil means the real
// clock.
func NewPipeClock(ck vclock.Clock) (MsgConn, MsgConn) {
	ab := vclock.NewMailbox[[]byte](ck, 32)
	ba := vclock.NewMailbox[[]byte](ck, 32)
	a := &pipe{in: ba, out: ab}
	b := &pipe{in: ab, out: ba}
	a.peer, b.peer = b, a
	return a, b
}

// ReadMsg implements MsgConn. Messages already queued when an end
// closes are drained before the close is reported.
func (p *pipe) ReadMsg() ([]byte, error) {
	m, ok := p.in.Recv()
	if ok {
		return m, nil
	}
	if p.closed.Load() {
		return nil, ErrConnClosed
	}
	return nil, io.EOF
}

// WriteMsg implements MsgConn: m itself is handed to the reader.
func (p *pipe) WriteMsg(m []byte) error {
	if p.closed.Load() || p.peer.closed.Load() {
		return ErrConnClosed
	}
	if err := p.out.Send(m); err != nil {
		return ErrConnClosed
	}
	return nil
}

// Close implements MsgConn: both directions close, so the peer's
// reads drain and report EOF and its writes fail.
func (p *pipe) Close() error {
	p.once.Do(func() {
		p.closed.Store(true)
		p.out.Close()
		p.in.Close()
	})
	return nil
}

// streamConn adapts a byte stream (e.g. a TCP data file) into a
// MsgConn by length-prefix framing: the marshaling the paper says is
// needed "when a protocol does not meet these requirements (for
// example, TCP does not preserve delimiters)". 9P messages already
// begin with their length, so the frame is the message itself; the
// adapter reads the 4-byte size then the remainder.
type streamConn struct {
	rwc io.ReadWriteCloser
	rmu sync.Mutex
	wmu sync.Mutex
}

// NewStreamConn wraps a byte-stream connection as a MsgConn.
func NewStreamConn(rwc io.ReadWriteCloser) MsgConn {
	return &streamConn{rwc: rwc}
}

// ReadMsg implements MsgConn.
func (s *streamConn) ReadMsg() ([]byte, error) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(s.rwc, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size < 7 || size > MaxMsg {
		return nil, ErrBadMsg
	}
	msg := block.GetBytes(int(size))
	copy(msg, hdr[:])
	if _, err := io.ReadFull(s.rwc, msg[4:]); err != nil {
		block.PutBytes(msg)
		return nil, err
	}
	return msg, nil
}

// WriteMsg implements MsgConn. The underlying stream copies into its
// send buffer before returning, so the owned message is recycled here.
func (s *streamConn) WriteMsg(p []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_, err := s.rwc.Write(p)
	block.PutBytes(p)
	return err
}

// Close implements MsgConn.
func (s *streamConn) Close() error { return s.rwc.Close() }

// delimConn adapts a delimiter-preserving duplex file (an IL data
// file, or any stream whose reads return one written message) into a
// MsgConn: each Read yields exactly one message.
type delimConn struct {
	rwc io.ReadWriteCloser
	rmu sync.Mutex
	wmu sync.Mutex
}

// NewDelimConn wraps a delimiter-preserving connection as a MsgConn.
func NewDelimConn(rwc io.ReadWriteCloser) MsgConn {
	return &delimConn{rwc: rwc}
}

// ReadMsg implements MsgConn: the message is read straight into a
// pooled buffer that the caller owns — no staging buffer, no copy.
func (d *delimConn) ReadMsg() ([]byte, error) {
	d.rmu.Lock()
	defer d.rmu.Unlock()
	buf := block.GetBytes(MaxMsg)
	n, err := d.rwc.Read(buf)
	if n == 0 {
		block.PutBytes(buf)
		if err == nil {
			err = io.EOF
		}
		return nil, err
	}
	return buf[:n], nil
}

// WriteMsg implements MsgConn. The transport copies into its send
// queue before returning, so the owned message is recycled here.
func (d *delimConn) WriteMsg(p []byte) error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	_, err := d.rwc.Write(p)
	block.PutBytes(p)
	return err
}

// Close implements MsgConn.
func (d *delimConn) Close() error { return d.rwc.Close() }
