package ninep

import (
	"testing"

	"repro/internal/block"
	"repro/internal/ramfs"
	"repro/internal/vfs"
)

// The block-discipline gate for 9P: one Rread round-trip over an
// in-process pipe. Request and response travel as pool-backed buffers
// whose ownership crosses the pipe — marshal, transport, and decode
// must not reintroduce per-message buffer allocations. The budget
// covers the Fcall structs, the tag channel, and the copied Data;
// before pooling this path also allocated fresh marshal and wire
// buffers on both sides.
func TestAllocsRreadRoundTrip(t *testing.T) {
	if block.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	fs := ramfs.New("srv")
	fs.WriteFile("f", make([]byte, 4096), 0664)
	a, p := NewPipe()
	go Serve(p, func(uname, aname string) (vfs.Node, error) { return fs.Root(), nil })
	cl, err := NewClient(a)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root, err := cl.Attach("u", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.CloneWalk("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := f.Read(buf, 0); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Rread(4K) round trip: %.1f allocs/op", allocs)
	if allocs > 12 {
		t.Fatalf("Rread round trip allocates %.1f objects/op, want <= 12 (pool bypassed?)", allocs)
	}
}
