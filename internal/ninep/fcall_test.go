package ninep

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func roundTrip(t *testing.T, f *Fcall) *Fcall {
	t.Helper()
	b, err := MarshalFcall(f)
	if err != nil {
		t.Fatalf("marshal %s: %v", TypeName(f.Type), err)
	}
	g, err := UnmarshalFcall(b)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", TypeName(f.Type), err)
	}
	return g
}

func TestRoundTripAllTypes(t *testing.T) {
	qid := vfs.Qid{Path: 0x1234567890ab, Vers: 9, Type: vfs.QTDIR}
	stat := vfs.Dir{Name: "data", Uid: "ehg", Gid: "bootes", Muid: "ehg",
		Qid: qid, Mode: vfs.DMDIR | 0775, Atime: 1, Mtime: 2, Length: 3}
	cases := []*Fcall{
		{Type: Tnop},
		{Type: Rnop},
		{Type: Tsession, Chal: "challenge"},
		{Type: Rsession, Chal: "response"},
		{Type: Rerror, Ename: "file does not exist"},
		{Type: Tflush, Oldtag: 77},
		{Type: Rflush},
		{Type: Tattach, Fid: 1, Uname: "presotto", Aname: "net"},
		{Type: Rattach, Fid: 1, Qid: qid},
		{Type: Tauth, Fid: 2, Uname: "philw", Chal: "c"},
		{Type: Rauth, Chal: "ticket"},
		{Type: Tclone, Fid: 1, Newfid: 2},
		{Type: Rclone, Fid: 1},
		{Type: Twalk, Fid: 2, Name: "tcp"},
		{Type: Rwalk, Fid: 2, Qid: qid},
		{Type: Tclwalk, Fid: 2, Newfid: 3, Name: "clone"},
		{Type: Rclwalk, Fid: 3, Qid: qid},
		{Type: Topen, Fid: 3, Mode: vfs.ORDWR},
		{Type: Ropen, Fid: 3, Qid: qid},
		{Type: Tcreate, Fid: 3, Name: "f", Perm: 0664, Mode: vfs.OWRITE},
		{Type: Rcreate, Fid: 3, Qid: qid},
		{Type: Tread, Fid: 3, Offset: 1 << 40, Count: 8192},
		{Type: Rread, Fid: 3, Data: []byte("hello"), Count: 5},
		{Type: Twrite, Fid: 3, Offset: 7, Data: []byte("world"), Count: 5},
		{Type: Rwrite, Fid: 3, Count: 5},
		{Type: Tclunk, Fid: 3},
		{Type: Rclunk, Fid: 3},
		{Type: Tremove, Fid: 3},
		{Type: Rremove, Fid: 3},
		{Type: Tstat, Fid: 3},
		{Type: Rstat, Fid: 3, Stat: stat},
		{Type: Twstat, Fid: 3, Stat: stat},
		{Type: Rwstat, Fid: 3},
	}
	for _, f := range cases {
		f.Tag = 42
		g := roundTrip(t, f)
		if !reflect.DeepEqual(f, g) {
			t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", TypeName(f.Type), g, f)
		}
	}
}

func TestSeventeenMessageOperations(t *testing.T) {
	// The paper: "The protocol consists of 17 messages." Count the
	// distinct operations we implement (T types plus Rerror, minus
	// the illegal Terror).
	ops := 0
	for ty := Tnop; ty < Tmax; ty += 2 {
		if ty == Terror {
			continue // only the R form exists
		}
		ops++
	}
	ops++ // error
	if ops != 17 {
		t.Errorf("protocol has %d message operations, paper says 17", ops)
	}
}

func TestMarshalRejectsOversizedData(t *testing.T) {
	big := make([]byte, MaxFData+1)
	if _, err := MarshalFcall(&Fcall{Type: Rread, Data: big}); err != ErrDataLen {
		t.Errorf("oversized Rread: %v", err)
	}
	if _, err := MarshalFcall(&Fcall{Type: Twrite, Data: big}); err != ErrDataLen {
		t.Errorf("oversized Twrite: %v", err)
	}
}

func TestMarshalRejectsLongNames(t *testing.T) {
	long := string(bytes.Repeat([]byte("x"), NameLen))
	if _, err := MarshalFcall(&Fcall{Type: Twalk, Name: long}); err != ErrNameLen {
		t.Errorf("long walk name: %v", err)
	}
}

func TestMarshalRejectsBadType(t *testing.T) {
	if _, err := MarshalFcall(&Fcall{Type: Terror}); err != ErrBadType {
		t.Errorf("Terror marshal: %v", err)
	}
	if _, err := MarshalFcall(&Fcall{Type: 250}); err != ErrBadType {
		t.Errorf("unknown type marshal: %v", err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalFcall(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := UnmarshalFcall([]byte{1, 2, 3}); err == nil {
		t.Error("short accepted")
	}
	// Valid message with corrupted size.
	b, _ := MarshalFcall(&Fcall{Type: Tnop, Tag: 1})
	b[0] = 99
	if _, err := UnmarshalFcall(b); err == nil {
		t.Error("bad size accepted")
	}
	// Truncated body.
	b, _ = MarshalFcall(&Fcall{Type: Tattach, Fid: 1, Uname: "u"})
	if _, err := UnmarshalFcall(b[:10]); err == nil {
		t.Error("truncated body accepted")
	}
	// Rread whose count exceeds the buffer.
	b, _ = MarshalFcall(&Fcall{Type: Rread, Data: []byte("abcd")})
	b[11] = 0xff // count low byte
	b[12] = 0xff
	if _, err := UnmarshalFcall(b); err == nil {
		t.Error("overlong count accepted")
	}
}

// Property: unmarshal(marshal(f)) is the identity for arbitrary
// well-formed write messages.
func TestWriteRoundTripQuick(t *testing.T) {
	f := func(fid uint32, off int64, data []byte) bool {
		if len(data) > MaxFData {
			data = data[:MaxFData]
		}
		if off < 0 {
			off = -off
		}
		in := &Fcall{Type: Twrite, Tag: 3, Fid: fid, Offset: off, Data: data, Count: uint16(len(data))}
		b, err := MarshalFcall(in)
		if err != nil {
			return false
		}
		out, err := UnmarshalFcall(b)
		if err != nil {
			return false
		}
		if len(in.Data) == 0 {
			in.Data, out.Data = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the unmarshaler never panics on random bytes.
func TestUnmarshalFuzzSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for range 5000 {
		n := rng.Intn(200)
		b := make([]byte, n)
		rng.Read(b)
		UnmarshalFcall(b) // must not panic
	}
	// Also mutate valid messages.
	valid, _ := MarshalFcall(&Fcall{Type: Tcreate, Tag: 1, Fid: 2, Name: "x", Perm: 0664, Mode: 1})
	for range 5000 {
		b := append([]byte(nil), valid...)
		b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		UnmarshalFcall(b)
	}
}

func TestTypeName(t *testing.T) {
	if TypeName(Tattach) != "Tattach" || TypeName(Rerror) != "Rerror" {
		t.Error("TypeName wrong for known types")
	}
	if TypeName(255) == "" {
		t.Error("TypeName empty for unknown type")
	}
}

func TestFcallString(t *testing.T) {
	for _, f := range []*Fcall{
		{Type: Rerror, Ename: "x"},
		{Type: Twalk, Name: "n"},
		{Type: Tread, Count: 1},
		{Type: Tclunk},
	} {
		if f.String() == "" {
			t.Errorf("empty String for %d", f.Type)
		}
	}
}
