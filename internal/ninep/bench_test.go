package ninep

import (
	"testing"

	"repro/internal/ramfs"
	"repro/internal/vfs"
)

// 9P RPC costs over an in-process pipe: the floor under every mount
// in the system (network transports add their own costs on top).

func benchClient(b *testing.B) (*Client, *ramfs.FS) {
	b.Helper()
	fs := ramfs.New("srv")
	a, p := NewPipe()
	go Serve(p, func(uname, aname string) (vfs.Node, error) { return fs.Root(), nil })
	cl, err := NewClient(a)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	return cl, fs
}

func BenchmarkRPCStat(b *testing.B) {
	cl, fs := benchClient(b)
	fs.WriteFile("f", nil, 0664)
	root, _ := cl.Attach("u", "")
	f, _ := root.CloneWalk("f")
	b.ResetTimer()
	for b.Loop() {
		if _, err := f.Stat(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCRead4K(b *testing.B) {
	cl, fs := benchClient(b)
	fs.WriteFile("f", make([]byte, 4096), 0664)
	root, _ := cl.Attach("u", "")
	f, _ := root.CloneWalk("f")
	f.Open(vfs.OREAD)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for b.Loop() {
		if _, err := f.Read(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCWalkOpenClunk(b *testing.B) {
	cl, fs := benchClient(b)
	fs.WriteFile("dir/f", nil, 0664)
	root, _ := cl.Attach("u", "")
	b.ResetTimer()
	for b.Loop() {
		d, err := root.CloneWalk("dir")
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Walk("f"); err != nil {
			b.Fatal(err)
		}
		if err := d.Open(vfs.OREAD); err != nil {
			b.Fatal(err)
		}
		d.Clunk()
	}
}

func BenchmarkMarshalFcall(b *testing.B) {
	f := &Fcall{Type: Twrite, Tag: 1, Fid: 2, Offset: 4096, Data: make([]byte, 4096)}
	b.SetBytes(4096)
	b.ResetTimer()
	for b.Loop() {
		if _, err := MarshalFcall(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalFcall(b *testing.B) {
	f := &Fcall{Type: Twrite, Tag: 1, Fid: 2, Offset: 4096, Data: make([]byte, 4096)}
	raw, _ := MarshalFcall(f)
	b.SetBytes(4096)
	b.ResetTimer()
	for b.Loop() {
		if _, err := UnmarshalFcall(raw); err != nil {
			b.Fatal(err)
		}
	}
}
