package ninep

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/block"
	"repro/internal/vfs"
)

// Client is the RPC engine of the mount driver (§2.1): it packs
// procedural operations into 9P messages, demultiplexes responses among
// the processes using the file server, and manages fids and tags.
type Client struct {
	conn MsgConn

	mu      sync.Mutex
	tags    map[uint16]chan *Fcall
	nextTag uint16
	nextFid uint32
	err     error
	done    chan struct{}
}

// NewClient starts a 9P client on conn and performs the session
// handshake. The caller then Attaches to obtain a root fid.
func NewClient(conn MsgConn) (*Client, error) {
	cl := &Client{
		conn: conn,
		tags: make(map[uint16]chan *Fcall),
		done: make(chan struct{}),
	}
	go cl.demux()
	if _, err := cl.RPC(&Fcall{Type: Tsession, Chal: "repro"}); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

// demux reads responses and hands each to the waiting process, "the
// mount driver ... demultiplexes among processes using the file
// server".
func (cl *Client) demux() {
	for {
		msg, err := cl.conn.ReadMsg()
		if err != nil {
			cl.fail(err)
			return
		}
		f, err := UnmarshalFcall(msg)
		// UnmarshalFcall copies everything it keeps, so the wire
		// buffer goes back to the pool either way.
		block.PutBytes(msg)
		if err != nil {
			cl.fail(err)
			return
		}
		cl.mu.Lock()
		ch := cl.tags[f.Tag]
		delete(cl.tags, f.Tag)
		cl.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

func (cl *Client) fail(err error) {
	cl.mu.Lock()
	if cl.err == nil {
		cl.err = err
		close(cl.done)
	}
	pending := cl.tags
	cl.tags = make(map[uint16]chan *Fcall)
	cl.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Close tears down the connection; outstanding RPCs fail.
func (cl *Client) Close() error {
	err := cl.conn.Close()
	cl.fail(ErrConnClosed)
	return err
}

// RPC performs one request/response exchange. On an Rerror response it
// returns the error string as an error.
func (cl *Client) RPC(t *Fcall) (*Fcall, error) {
	ch := make(chan *Fcall, 1)
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
	cl.nextTag++
	if cl.nextTag == NoTag {
		cl.nextTag = 1
	}
	tag := cl.nextTag
	for cl.tags[tag] != nil { // skip tags still in flight
		tag++
		if tag == NoTag {
			tag = 1
		}
	}
	cl.tags[tag] = ch
	cl.mu.Unlock()

	t.Tag = tag
	msg, err := MarshalFcall(t)
	if err != nil {
		cl.mu.Lock()
		delete(cl.tags, tag)
		cl.mu.Unlock()
		return nil, err
	}
	if err := cl.conn.WriteMsg(msg); err != nil {
		cl.mu.Lock()
		delete(cl.tags, tag)
		cl.mu.Unlock()
		return nil, err
	}
	r, ok := <-ch
	if !ok {
		cl.mu.Lock()
		err := cl.err
		cl.mu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return nil, err
	}
	if r.Type == Rerror {
		return nil, errors.New(r.Ename)
	}
	if r.Type != t.Type+1 {
		return nil, fmt.Errorf("9P: got %s in response to %s", TypeName(r.Type), TypeName(t.Type))
	}
	return r, nil
}

func (cl *Client) newFid() uint32 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.nextFid++
	return cl.nextFid
}

// Fid is a remote file handle: the client end of a server fid.
type Fid struct {
	cl  *Client
	fid uint32
	qid vfs.Qid
}

// Attach authenticates uname to the server and returns a fid for the
// root of the tree named by aname.
func (cl *Client) Attach(uname, aname string) (*Fid, error) {
	fid := cl.newFid()
	r, err := cl.RPC(&Fcall{Type: Tattach, Fid: fid, Uname: uname, Aname: aname})
	if err != nil {
		return nil, err
	}
	return &Fid{cl: cl, fid: fid, qid: r.Qid}, nil
}

// Qid returns the qid most recently reported for the fid.
func (f *Fid) Qid() vfs.Qid { return f.qid }

// Clone duplicates the fid (Tclone), like dup(2) on a channel.
func (f *Fid) Clone() (*Fid, error) {
	nf := f.cl.newFid()
	if _, err := f.cl.RPC(&Fcall{Type: Tclone, Fid: f.fid, Newfid: nf}); err != nil {
		return nil, err
	}
	return &Fid{cl: f.cl, fid: nf, qid: f.qid}, nil
}

// Walk moves the fid one level down the hierarchy (Twalk).
func (f *Fid) Walk(name string) error {
	r, err := f.cl.RPC(&Fcall{Type: Twalk, Fid: f.fid, Name: name})
	if err != nil {
		return err
	}
	f.qid = r.Qid
	return nil
}

// CloneWalk clones the fid and walks the clone in one RPC (Tclwalk).
func (f *Fid) CloneWalk(name string) (*Fid, error) {
	nf := f.cl.newFid()
	r, err := f.cl.RPC(&Fcall{Type: Tclwalk, Fid: f.fid, Newfid: nf, Name: name})
	if err != nil {
		return nil, err
	}
	return &Fid{cl: f.cl, fid: nf, qid: r.Qid}, nil
}

// Open prepares the fid for reads and writes (Topen).
func (f *Fid) Open(mode int) error {
	r, err := f.cl.RPC(&Fcall{Type: Topen, Fid: f.fid, Mode: uint8(mode)})
	if err != nil {
		return err
	}
	f.qid = r.Qid
	return nil
}

// Create creates name in the directory the fid refers to and opens it
// (Tcreate); the fid moves to the new file.
func (f *Fid) Create(name string, perm uint32, mode int) error {
	r, err := f.cl.RPC(&Fcall{Type: Tcreate, Fid: f.fid, Name: name, Perm: perm, Mode: uint8(mode)})
	if err != nil {
		return err
	}
	f.qid = r.Qid
	return nil
}

// Read reads up to len(p) bytes at offset off, splitting into MaxFData
// RPCs as the mount driver does. As in the kernel's mnt driver, a
// short response ends the read (EOF or a message boundary on a
// delimited device); reads of at most MaxFData map to exactly one RPC,
// which is how delimiters survive the mount driver.
func (f *Fid) Read(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxFData {
			n = MaxFData
		}
		r, err := f.cl.RPC(&Fcall{Type: Tread, Fid: f.fid, Offset: off + int64(total), Count: uint16(n)})
		if err != nil {
			return total, err
		}
		copy(p[total:], r.Data)
		total += len(r.Data)
		if len(r.Data) < n {
			break
		}
	}
	return total, nil
}

// Write writes p at offset off, splitting into MaxFData RPCs.
func (f *Fid) Write(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		_, err := f.cl.RPC(&Fcall{Type: Twrite, Fid: f.fid, Offset: off})
		return 0, err
	}
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxFData {
			n = MaxFData
		}
		r, err := f.cl.RPC(&Fcall{Type: Twrite, Fid: f.fid, Offset: off + int64(total), Data: p[total : total+n]})
		if err != nil {
			return total, err
		}
		total += int(r.Count)
		if int(r.Count) < n {
			return total, nil
		}
	}
	return total, nil
}

// Stat returns the file's directory entry (Tstat).
func (f *Fid) Stat() (vfs.Dir, error) {
	r, err := f.cl.RPC(&Fcall{Type: Tstat, Fid: f.fid})
	if err != nil {
		return vfs.Dir{}, err
	}
	return r.Stat, nil
}

// Wstat rewrites the file's attributes (Twstat).
func (f *Fid) Wstat(d vfs.Dir) error {
	_, err := f.cl.RPC(&Fcall{Type: Twstat, Fid: f.fid, Stat: d})
	return err
}

// Clunk discards the fid without affecting the file (Tclunk).
func (f *Fid) Clunk() error {
	_, err := f.cl.RPC(&Fcall{Type: Tclunk, Fid: f.fid})
	return err
}

// Remove removes the file and clunks the fid (Tremove).
func (f *Fid) Remove() error {
	_, err := f.cl.RPC(&Fcall{Type: Tremove, Fid: f.fid})
	return err
}
