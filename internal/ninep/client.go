package ninep

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// Pipelining defaults. The window is how many fragment RPCs a large
// Fid.Read or Fid.Write keeps in flight at once — the mount driver's
// sliding window — on clients that opt into WindowedTransfers.
// MaxInFlight bounds the tags outstanding on the whole client; when it
// is reached, new RPCs block until a reply frees a tag (tag-exhaustion
// backpressure) rather than spinning over the tag space.
const (
	DefaultWindow      = 8
	DefaultMaxInFlight = 64

	// maxTags is the number of usable tags: 1..NoTag-1. Tag 0 is
	// avoided by convention and NoTag is reserved.
	maxTags = int(NoTag) - 1
)

// ClientConfig tunes the mount driver's RPC engine. The zero value is
// safe for any server, including live device trees: every Fid.Read and
// Fid.Write maps onto the same RPCs, in the same order, as the serial
// driver. Fanning a large transfer into concurrent fragment RPCs is an
// explicit opt-in (WindowedTransfers) because it is only correct on
// trees of plain files — on a delimited or stream device a speculative
// Tread past a message boundary consumes data the caller never asked
// for, even if its reply is later flushed.
type ClientConfig struct {
	// Window is the number of concurrent fragment RPCs a large
	// read or write fans into when WindowedTransfers is set, and the
	// depth of the mount driver's write-behind. 0 means
	// DefaultWindow; 1 forces every fragment to wait for the
	// previous reply even where fan-out is enabled.
	Window int
	// MaxInFlight caps outstanding tags on the client across all
	// processes. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// WindowedTransfers fans Fid.Read/Fid.Write calls larger than
	// MaxFData into up to Window concurrent fragment RPCs on
	// plain-file fids. Off by default: only opt a client in when the
	// served tree holds plain files (mnt.FileConfig does), never for
	// an imported device tree.
	WindowedTransfers bool
	// Clock drives the client's goroutines and latency measurements;
	// nil means the real clock.
	Clock vclock.Clock
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxInFlight > maxTags {
		c.MaxInFlight = maxTags
	}
	if c.Window > c.MaxInFlight {
		c.Window = c.MaxInFlight
	}
	return c
}

// Client is the RPC engine of the mount driver (§2.1): it packs
// procedural operations into 9P messages, demultiplexes responses among
// the processes using the file server, and manages fids and tags.
type Client struct {
	conn MsgConn
	cfg  ClientConfig
	ck   vclock.Clock

	mu      sync.Mutex
	tagFree vclock.Cond // signaled whenever a tag is released
	// tags holds one entry per outstanding tag. A non-nil mailbox
	// is a process waiting for the reply; a nil value is a tag
	// abandoned by Tflush but still reserved until the flush
	// completes, so the server's late reply (if any) is dropped on
	// the floor instead of reaching a recycled tag's new owner.
	tags    map[uint16]*vclock.Mailbox[*Fcall]
	nextTag uint16
	nextFid uint32
	err     error

	// Mount-driver observability: RPC count and latency, Tflush count,
	// and the in-flight window high-water mark. The mnt device renders
	// these into /net/mnt/stats.
	RPCs     obs.Counter
	Flushes  obs.Counter
	RPCHist  obs.Hist
	WindowHW obs.Watermark
	stats    *obs.Group
}

// NewClient starts a 9P client on conn and performs the session
// handshake. The caller then Attaches to obtain a root fid.
func NewClient(conn MsgConn) (*Client, error) {
	return NewClientConfig(conn, ClientConfig{})
}

// NewClientConfig is NewClient with an explicit pipelining
// configuration.
func NewClientConfig(conn MsgConn, cfg ClientConfig) (*Client, error) {
	cl := &Client{
		conn: conn,
		cfg:  cfg.withDefaults(),
		ck:   vclock.Or(cfg.Clock),
		tags: make(map[uint16]*vclock.Mailbox[*Fcall]),
	}
	cl.tagFree.Init(cl.ck, &cl.mu)
	cl.stats = new(obs.Group).
		AddCounter("rpcs", &cl.RPCs).
		AddCounter("flushes", &cl.Flushes).
		Add("window-max", cl.WindowHW.Load).
		AddHist("rpc", &cl.RPCHist)
	cl.ck.Go(cl.demux)
	if _, err := cl.RPC(&Fcall{Type: Tsession, Chal: "repro"}); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

// Window reports the configured fragment window.
func (cl *Client) Window() int { return cl.cfg.Window }

// Clock returns the clock the client runs on.
func (cl *Client) Clock() vclock.Clock { return cl.ck }

// StatsGroup exposes the client's counters and RPC latency histogram.
func (cl *Client) StatsGroup() *obs.Group { return cl.stats }

// Dead reports whether the client has failed or been closed; RPCs on a
// dead client fail immediately without blocking.
func (cl *Client) Dead() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.err != nil
}

// demux reads responses and hands each to the waiting process, "the
// mount driver ... demultiplexes among processes using the file
// server".
func (cl *Client) demux() {
	for {
		msg, err := cl.conn.ReadMsg()
		if err != nil {
			cl.fail(err)
			return
		}
		f, err := UnmarshalFcall(msg)
		// UnmarshalFcall copies everything it keeps, so the wire
		// buffer goes back to the pool either way.
		block.PutBytes(msg)
		if err != nil {
			cl.fail(err)
			return
		}
		cl.mu.Lock()
		ch, ok := cl.tags[f.Tag]
		if ok {
			delete(cl.tags, f.Tag)
			cl.tagFree.Broadcast()
		}
		cl.mu.Unlock()
		// ch == nil: the tag was flushed; the reply raced the
		// Tflush and is discarded. TrySend cannot find the
		// one-slot mailbox full — each tag gets one reply — so a
		// refusal only means the client already failed.
		if ch != nil {
			ch.TrySend(f)
		}
	}
}

func (cl *Client) fail(err error) {
	cl.mu.Lock()
	if cl.err == nil {
		cl.err = err
	}
	pending := cl.tags
	cl.tags = make(map[uint16]*vclock.Mailbox[*Fcall])
	cl.tagFree.Broadcast()
	cl.mu.Unlock()
	for _, ch := range pending {
		if ch != nil {
			ch.Close()
		}
	}
}

// Close tears down the connection; outstanding RPCs fail.
func (cl *Client) Close() error {
	err := cl.conn.Close()
	cl.fail(ErrConnClosed)
	return err
}

// allocTag reserves a free tag for ch, blocking while the in-flight
// window is full or the tag space is exhausted. Tflush is exempt from
// the in-flight cap (flushExempt): a flush must be able to proceed
// even when the cap is saturated by the very requests it abandons.
func (cl *Client) allocTag(ch *vclock.Mailbox[*Fcall], flushExempt bool) (uint16, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	limit := cl.cfg.MaxInFlight
	if flushExempt {
		limit = maxTags
	}
	for cl.err == nil && len(cl.tags) >= limit {
		cl.tagFree.Wait()
	}
	if cl.err != nil {
		return 0, cl.err
	}
	// len(tags) < maxTags here, so a free tag exists and the scan
	// terminates.
	for {
		cl.nextTag++
		if cl.nextTag == NoTag {
			cl.nextTag = 1
		}
		if _, inUse := cl.tags[cl.nextTag]; !inUse {
			cl.tags[cl.nextTag] = ch
			cl.WindowHW.Note(int64(len(cl.tags)))
			return cl.nextTag, nil
		}
	}
}

// freeTag releases a tag reserved by allocTag but never answered (a
// marshal or transport error, or a completed flush).
func (cl *Client) freeTag(tag uint16) {
	cl.mu.Lock()
	delete(cl.tags, tag)
	cl.tagFree.Broadcast()
	cl.mu.Unlock()
}

// Pending is an RPC in flight: the asynchronous half of the mount
// driver. Exactly one of Wait or Flush must be called, once.
type Pending struct {
	cl    *Client
	tag   uint16
	req   uint8
	ch    *vclock.Mailbox[*Fcall]
	start time.Time
}

// RPCAsync sends t now and returns a Pending whose Wait delivers the
// reply. Replies to distinct Pendings may arrive in any order; the
// request hits the wire before RPCAsync returns, so two RPCAsyncs from
// one goroutine reach the server in call order.
func (cl *Client) RPCAsync(t *Fcall) (*Pending, error) {
	return cl.sendAsync(t, false)
}

func (cl *Client) sendAsync(t *Fcall, flushExempt bool) (*Pending, error) {
	ch := vclock.NewMailbox[*Fcall](cl.ck, 1)
	tag, err := cl.allocTag(ch, flushExempt)
	if err != nil {
		return nil, err
	}
	t.Tag = tag
	msg, err := MarshalFcall(t)
	if err != nil {
		cl.freeTag(tag)
		return nil, err
	}
	if err := cl.conn.WriteMsg(msg); err != nil {
		cl.freeTag(tag)
		return nil, err
	}
	cl.RPCs.Inc()
	return &Pending{cl: cl, tag: tag, req: t.Type, ch: ch, start: cl.ck.Now()}, nil
}

// Wait blocks for the reply. On an Rerror response it returns the
// error string as an error.
func (p *Pending) Wait() (*Fcall, error) {
	r, ok := p.ch.Recv()
	if !ok {
		p.cl.mu.Lock()
		err := p.cl.err
		p.cl.mu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return nil, err
	}
	p.cl.RPCHist.Observe(p.cl.ck.Since(p.start))
	if r.Type == Rerror {
		return nil, errors.New(r.Ename)
	}
	if r.Type != p.req+1 {
		return nil, fmt.Errorf("9P: got %s in response to %s", TypeName(r.Type), TypeName(p.req))
	}
	return r, nil
}

// abandon marks the pending's tag as flushed (nil in the tag table) so
// demux drops a late reply. It reports whether the reply was still
// outstanding; if false the reply has already been delivered (or the
// client failed) and no Tflush is needed.
func (p *Pending) abandon() bool {
	p.cl.mu.Lock()
	defer p.cl.mu.Unlock()
	if ch, ok := p.cl.tags[p.tag]; ok && ch == p.ch {
		p.cl.tags[p.tag] = nil
		return true
	}
	return false
}

// Flush abandons the RPC: any reply is discarded, and a Tflush tells
// the server to forget the request (§2.1's "flush an I/O transaction
// when an interrupt is received"). It blocks until the Rflush arrives
// so the tag is quiet before reuse.
func (p *Pending) Flush() {
	p.cl.flushMany([]*Pending{p})
}

// flushMany abandons a batch of in-flight RPCs, pipelining the
// Tflushes so a truncated windowed transfer pays one round trip, not
// one per speculative fragment. Tflush allocation bypasses the
// in-flight cap; it only needs a free tag in the 16-bit space.
func (cl *Client) flushMany(ps []*Pending) {
	flushes := make([]*Pending, 0, len(ps))
	flushed := make([]*Pending, 0, len(ps))
	for _, p := range ps {
		if p == nil || !p.abandon() {
			continue
		}
		cl.Flushes.Inc()
		fp, err := cl.sendAsync(&Fcall{Type: Tflush, Oldtag: p.tag}, true)
		if err != nil {
			// Transport dead: fail() has already emptied the
			// tag table; nothing left to release.
			continue
		}
		flushes = append(flushes, fp)
		flushed = append(flushed, p)
	}
	for i, fp := range flushes {
		fp.Wait()
		// The flush is answered: release the abandoned tag's
		// reservation (demux may already have dropped a raced
		// reply and freed it).
		flushed[i].release()
	}
}

// release frees the tag of an abandoned pending once its flush has
// completed, if demux hasn't already consumed a raced reply.
func (p *Pending) release() {
	p.cl.mu.Lock()
	if ch, ok := p.cl.tags[p.tag]; ok && ch == nil {
		delete(p.cl.tags, p.tag)
		p.cl.tagFree.Broadcast()
	}
	p.cl.mu.Unlock()
}

// RPC performs one request/response exchange. On an Rerror response it
// returns the error string as an error.
func (cl *Client) RPC(t *Fcall) (*Fcall, error) {
	p, err := cl.RPCAsync(t)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

func (cl *Client) newFid() uint32 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.nextFid++
	return cl.nextFid
}

// Fid is a remote file handle: the client end of a server fid.
type Fid struct {
	cl  *Client
	fid uint32
	qid vfs.Qid
}

// Attach authenticates uname to the server and returns a fid for the
// root of the tree named by aname.
func (cl *Client) Attach(uname, aname string) (*Fid, error) {
	fid := cl.newFid()
	r, err := cl.RPC(&Fcall{Type: Tattach, Fid: fid, Uname: uname, Aname: aname})
	if err != nil {
		return nil, err
	}
	return &Fid{cl: cl, fid: fid, qid: r.Qid}, nil
}

// Client returns the client the fid lives on.
func (f *Fid) Client() *Client { return f.cl }

// Qid returns the qid most recently reported for the fid.
func (f *Fid) Qid() vfs.Qid { return f.qid }

// Clone duplicates the fid (Tclone), like dup(2) on a channel.
func (f *Fid) Clone() (*Fid, error) {
	nf := f.cl.newFid()
	if _, err := f.cl.RPC(&Fcall{Type: Tclone, Fid: f.fid, Newfid: nf}); err != nil {
		return nil, err
	}
	return &Fid{cl: f.cl, fid: nf, qid: f.qid}, nil
}

// Walk moves the fid one level down the hierarchy (Twalk).
func (f *Fid) Walk(name string) error {
	r, err := f.cl.RPC(&Fcall{Type: Twalk, Fid: f.fid, Name: name})
	if err != nil {
		return err
	}
	f.qid = r.Qid
	return nil
}

// CloneWalk clones the fid and walks the clone in one RPC (Tclwalk).
func (f *Fid) CloneWalk(name string) (*Fid, error) {
	nf := f.cl.newFid()
	r, err := f.cl.RPC(&Fcall{Type: Tclwalk, Fid: f.fid, Newfid: nf, Name: name})
	if err != nil {
		return nil, err
	}
	return &Fid{cl: f.cl, fid: nf, qid: r.Qid}, nil
}

// Open prepares the fid for reads and writes (Topen).
func (f *Fid) Open(mode int) error {
	r, err := f.cl.RPC(&Fcall{Type: Topen, Fid: f.fid, Mode: uint8(mode)})
	if err != nil {
		return err
	}
	f.qid = r.Qid
	return nil
}

// Create creates name in the directory the fid refers to and opens it
// (Tcreate); the fid moves to the new file.
func (f *Fid) Create(name string, perm uint32, mode int) error {
	r, err := f.cl.RPC(&Fcall{Type: Tcreate, Fid: f.fid, Name: name, Perm: perm, Mode: uint8(mode)})
	if err != nil {
		return err
	}
	f.qid = r.Qid
	return nil
}

// Read reads up to len(p) bytes at offset off. Reads of at most
// MaxFData map to exactly one RPC, which is how message delimiters
// survive the mount driver; larger reads issue one MaxFData Tread at a
// time, a short reply ending the read — exactly the serial driver.
// Only when the client opts into WindowedTransfers, and only on a
// plain-file fid, does a larger read fan into up to Window concurrent
// Treads reassembled strictly in offset order, a short reply
// truncating the result there and the speculative fragments beyond it
// flushed. The fan-out is never used on directories, append/exclusive
// files, or clients without the opt-in, because a speculative Tread
// past a boundary is executed by the server before the flush can reach
// it — on a delimited or stream device that read consumes data.
func (f *Fid) Read(p []byte, off int64) (int, error) {
	if len(p) <= MaxFData || !f.windowed() {
		return f.readSerial(p, off)
	}
	return f.readWindowed(p, off)
}

// windowed reports whether transfers on this fid may fan into
// concurrent fragment RPCs: the client must opt in (WindowedTransfers,
// with a window above 1) and the fid must name a plain file.
func (f *Fid) windowed() bool {
	return f.cl.cfg.WindowedTransfers && f.cl.cfg.Window > 1 && f.qid.Type == vfs.QTFILE
}

// readSerial is the pre-window mount driver: one MaxFData RPC at a
// time, a short response ending the read.
func (f *Fid) readSerial(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxFData {
			n = MaxFData
		}
		r, err := f.cl.RPC(&Fcall{Type: Tread, Fid: f.fid, Offset: off + int64(total), Count: uint16(n)})
		if err != nil {
			return total, err
		}
		copy(p[total:], r.Data)
		total += len(r.Data)
		if len(r.Data) < n {
			break
		}
	}
	return total, nil
}

// readWindowed keeps up to Window fragment Treads in flight and
// reassembles replies in offset order.
func (f *Fid) readWindowed(p []byte, off int64) (int, error) {
	win := f.cl.cfg.Window
	nfrag := (len(p) + MaxFData - 1) / MaxFData
	pend := make([]*Pending, nfrag)
	issued := 0
	var issueErr error
	total := 0
	for seq := 0; seq < nfrag; seq++ {
		for issued < nfrag && issued < seq+win && issueErr == nil {
			n := min(len(p)-issued*MaxFData, MaxFData)
			pr, err := f.cl.RPCAsync(&Fcall{
				Type: Tread, Fid: f.fid,
				Offset: off + int64(issued)*MaxFData,
				Count:  uint16(n),
			})
			if err != nil {
				issueErr = err
				break
			}
			pend[issued] = pr
			issued++
		}
		if seq >= issued {
			return total, issueErr
		}
		asked := min(len(p)-seq*MaxFData, MaxFData)
		r, err := pend[seq].Wait()
		pend[seq] = nil
		if err != nil {
			f.cl.flushMany(pend[seq+1 : issued])
			return total, err
		}
		copy(p[seq*MaxFData:], r.Data)
		total += len(r.Data)
		if len(r.Data) < asked {
			// Short reply: EOF or a message boundary. The
			// fragments beyond it were speculative; flush them
			// so their data (if any) is discarded, exactly as
			// if they were never issued.
			f.cl.flushMany(pend[seq+1 : issued])
			return total, nil
		}
	}
	return total, issueErr
}

// Write writes p at offset off. Writes of at most MaxFData are one
// RPC; larger writes issue one fragment at a time, stopping at the
// first error or short Rwrite, exactly like the serial driver. On a
// client that opts into WindowedTransfers, larger writes to plain-file
// fids instead fan into up to Window concurrent Twrites, acknowledged
// strictly in offset order, a short Rwrite count truncating the total.
// The windowed fan-out relaxes the serial contract on failure: the
// fragments ride as independent RPCs, so when one errors or comes up
// short, fragments beyond the returned count may already have been
// applied by the server (see writeWindowed). A caller that cannot
// tolerate that — resuming a stream at the returned offset, say —
// must not enable WindowedTransfers for that tree.
func (f *Fid) Write(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		_, err := f.cl.RPC(&Fcall{Type: Twrite, Fid: f.fid, Offset: off})
		return 0, err
	}
	if len(p) <= MaxFData || !f.windowed() {
		return f.writeSerial(p, off)
	}
	return f.writeWindowed(p, off)
}

func (f *Fid) writeSerial(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxFData {
			n = MaxFData
		}
		r, err := f.cl.RPC(&Fcall{Type: Twrite, Fid: f.fid, Offset: off + int64(total), Data: p[total : total+n]})
		if err != nil {
			return total, err
		}
		total += int(r.Count)
		if int(r.Count) < n {
			return total, nil
		}
	}
	return total, nil
}

// writeWindowed keeps up to Window fragment Twrites in flight.
// MarshalFcall copies the data into the wire buffer inside RPCAsync,
// so p is not retained after issue. Fragments are independent RPCs: if
// one fails or comes up short, later fragments may already have been
// applied by the server even though the returned total excludes them
// (the same is true of any interrupted multi-fragment write).
func (f *Fid) writeWindowed(p []byte, off int64) (int, error) {
	win := f.cl.cfg.Window
	nfrag := (len(p) + MaxFData - 1) / MaxFData
	pend := make([]*Pending, nfrag)
	issued := 0
	var issueErr error
	total := 0
	for seq := 0; seq < nfrag; seq++ {
		for issued < nfrag && issued < seq+win && issueErr == nil {
			lo := issued * MaxFData
			hi := min(lo+MaxFData, len(p))
			pr, err := f.cl.RPCAsync(&Fcall{
				Type: Twrite, Fid: f.fid,
				Offset: off + int64(lo),
				Data:   p[lo:hi],
			})
			if err != nil {
				issueErr = err
				break
			}
			pend[issued] = pr
			issued++
		}
		if seq >= issued {
			return total, issueErr
		}
		asked := min(len(p)-seq*MaxFData, MaxFData)
		r, err := pend[seq].Wait()
		pend[seq] = nil
		if err != nil {
			f.cl.flushMany(pend[seq+1 : issued])
			return total, err
		}
		total += int(r.Count)
		if int(r.Count) < asked {
			f.cl.flushMany(pend[seq+1 : issued])
			return total, nil
		}
	}
	return total, issueErr
}

// ReadAsync issues a single-fragment Tread without waiting: the mount
// driver's readahead hook. count must be at most MaxFData.
func (f *Fid) ReadAsync(off int64, count int) (*Pending, error) {
	if count > MaxFData {
		count = MaxFData
	}
	return f.cl.RPCAsync(&Fcall{Type: Tread, Fid: f.fid, Offset: off, Count: uint16(count)})
}

// WriteAsync issues a single-fragment Twrite without waiting: the
// mount driver's write-behind hook. len(p) must be at most MaxFData;
// p is copied before WriteAsync returns.
func (f *Fid) WriteAsync(p []byte, off int64) (*Pending, error) {
	if len(p) > MaxFData {
		return nil, ErrDataLen
	}
	return f.cl.RPCAsync(&Fcall{Type: Twrite, Fid: f.fid, Offset: off, Data: p})
}

// FlushAll abandons a batch of pending RPCs, pipelining the Tflushes.
func (cl *Client) FlushAll(ps []*Pending) { cl.flushMany(ps) }

// Stat returns the file's directory entry (Tstat).
func (f *Fid) Stat() (vfs.Dir, error) {
	r, err := f.cl.RPC(&Fcall{Type: Tstat, Fid: f.fid})
	if err != nil {
		return vfs.Dir{}, err
	}
	return r.Stat, nil
}

// Wstat rewrites the file's attributes (Twstat).
func (f *Fid) Wstat(d vfs.Dir) error {
	_, err := f.cl.RPC(&Fcall{Type: Twstat, Fid: f.fid, Stat: d})
	return err
}

// Clunk discards the fid without affecting the file (Tclunk).
func (f *Fid) Clunk() error {
	_, err := f.cl.RPC(&Fcall{Type: Tclunk, Fid: f.fid})
	return err
}

// Remove removes the file and clunks the fid (Tremove).
func (f *Fid) Remove() error {
	_, err := f.cl.RPC(&Fcall{Type: Tremove, Fid: f.fid})
	return err
}
