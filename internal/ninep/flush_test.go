package ninep

import (
	"testing"
	"time"

	"repro/internal/vfs"
)

// blockingFS serves one file whose reads block until released — the
// shape of a listen file or an idle network data file, the reason the
// paper says exportfs must be multithreaded (§6.1).
type blockingFS struct {
	release chan struct{}
}

func (f *blockingFS) Name() string { return "blocking" }
func (f *blockingFS) Attach(spec string) (vfs.Node, error) {
	return blockNode{f: f}, nil
}

type blockNode struct{ f *blockingFS }

func (n blockNode) Stat() (vfs.Dir, error) {
	return vfs.Dir{Name: "block", Mode: 0666, Qid: vfs.Qid{Path: 1}}, nil
}
func (n blockNode) Walk(name string) (vfs.Node, error) { return nil, vfs.ErrNotExist }
func (n blockNode) Open(mode int) (vfs.Handle, error)  { return blockHandle{f: n.f}, nil }

type blockHandle struct{ f *blockingFS }

func (h blockHandle) Read(p []byte, off int64) (int, error) {
	<-h.f.release
	return copy(p, "released"), nil
}
func (h blockHandle) Write(p []byte, off int64) (int, error) { return len(p), nil }
func (h blockHandle) Close() error                           { return nil }

// TestFlushAbandonsBlockedRead: a client starts a read that blocks in
// the server, flushes it, gets Rflush immediately, and — per the 9P
// contract — never receives the abandoned read's response, while the
// connection keeps working.
func TestFlushAbandonsBlockedRead(t *testing.T) {
	fs := &blockingFS{release: make(chan struct{})}
	a, b := NewPipe()
	go Serve(b, func(uname, aname string) (vfs.Node, error) { return fs.Attach("") })
	cl, err := NewClient(a)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root, err := cl.Attach("u", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}

	// Issue the blocking read with a raw, hand-tagged RPC so we know
	// the tag to flush. The response channel stays registered so we
	// can assert no response ever arrives.
	readDone := make(chan *Fcall, 1)
	const readTag = 77
	cl.mu.Lock()
	cl.tags[readTag] = make(chan *Fcall, 1)
	respCh := cl.tags[readTag]
	cl.mu.Unlock()
	msg, _ := MarshalFcall(&Fcall{Type: Tread, Tag: readTag, Fid: 2, Count: 64})
	if err := cl.conn.WriteMsg(msg); err != nil {
		t.Fatal(err)
	}
	go func() {
		if r, ok := <-respCh; ok {
			readDone <- r
		}
	}()

	// While it blocks, other traffic flows (multithreaded server).
	if _, err := root.Stat(); err != nil {
		t.Fatalf("stat during blocked read: %v", err)
	}

	// Flush the read.
	r, err := cl.RPC(&Fcall{Type: Tflush, Oldtag: readTag})
	if err != nil || r.Type != Rflush {
		t.Fatalf("flush = %+v, %v", r, err)
	}

	// Release the server-side read; its response must be suppressed.
	close(fs.release)
	select {
	case resp := <-readDone:
		t.Fatalf("flushed read still answered: %+v", resp)
	case <-time.After(100 * time.Millisecond):
	}

	// The connection is still healthy.
	if _, err := root.Stat(); err != nil {
		t.Fatalf("stat after flush: %v", err)
	}
	f.Clunk()
}
