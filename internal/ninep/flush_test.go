package ninep

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vclock"
	"repro/internal/vfs"
)

// blockingFS serves one file whose reads block until released — the
// shape of a listen file or an idle network data file, the reason the
// paper says exportfs must be multithreaded (§6.1). reads counts how
// many Reads actually reach the handle.
type blockingFS struct {
	release chan struct{}
	reads   atomic.Int64
}

func (f *blockingFS) Name() string { return "blocking" }
func (f *blockingFS) Attach(spec string) (vfs.Node, error) {
	return blockNode{f: f}, nil
}

type blockNode struct{ f *blockingFS }

func (n blockNode) Stat() (vfs.Dir, error) {
	return vfs.Dir{Name: "block", Mode: 0666, Qid: vfs.Qid{Path: 1}}, nil
}
func (n blockNode) Walk(name string) (vfs.Node, error) { return nil, vfs.ErrNotExist }
func (n blockNode) Open(mode int) (vfs.Handle, error)  { return blockHandle{f: n.f}, nil }

type blockHandle struct{ f *blockingFS }

func (h blockHandle) Read(p []byte, off int64) (int, error) {
	h.f.reads.Add(1)
	<-h.f.release
	return copy(p, "released"), nil
}
func (h blockHandle) Write(p []byte, off int64) (int, error) { return len(p), nil }
func (h blockHandle) Close() error                           { return nil }

// TestFlushAbandonsBlockedRead: a client starts a read that blocks in
// the server, flushes it, gets Rflush immediately, and — per the 9P
// contract — never receives the abandoned read's response, while the
// connection keeps working.
func TestFlushAbandonsBlockedRead(t *testing.T) {
	fs := &blockingFS{release: make(chan struct{})}
	a, b := NewPipe()
	go Serve(b, func(uname, aname string) (vfs.Node, error) { return fs.Attach("") })
	cl, err := NewClient(a)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root, err := cl.Attach("u", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}

	// Issue the blocking read with a raw, hand-tagged RPC so we know
	// the tag to flush. The response channel stays registered so we
	// can assert no response ever arrives.
	readDone := make(chan *Fcall, 1)
	const readTag = 77
	cl.mu.Lock()
	cl.tags[readTag] = vclock.NewMailbox[*Fcall](nil, 1)
	respCh := cl.tags[readTag]
	cl.mu.Unlock()
	msg, _ := MarshalFcall(&Fcall{Type: Tread, Tag: readTag, Fid: 2, Count: 64})
	if err := cl.conn.WriteMsg(msg); err != nil {
		t.Fatal(err)
	}
	go func() {
		if r, ok := respCh.Recv(); ok {
			readDone <- r
		}
	}()

	// While it blocks, other traffic flows (multithreaded server).
	if _, err := root.Stat(); err != nil {
		t.Fatalf("stat during blocked read: %v", err)
	}

	// Flush the read.
	r, err := cl.RPC(&Fcall{Type: Tflush, Oldtag: readTag})
	if err != nil || r.Type != Rflush {
		t.Fatalf("flush = %+v, %v", r, err)
	}

	// Release the server-side read; its response must be suppressed.
	close(fs.release)
	select {
	case resp := <-readDone:
		t.Fatalf("flushed read still answered: %+v", resp)
	case <-time.After(100 * time.Millisecond):
	}

	// The connection is still healthy.
	if _, err := root.Stat(); err != nil {
		t.Fatalf("stat after flush: %v", err)
	}
	f.Clunk()
}

// TestFlushedTagReuse is the wrap-around regression: once Rflush
// arrives the tag is legitimately free, and the client will recycle it
// — in practice after the 16-bit tag space wraps — while the flushed
// request's goroutine may still be parked in the server. The recycled
// tag's new request must be answered normally (the old per-tag flush
// state must not swallow it), and the stale request's reply must never
// surface under the recycled tag.
func TestFlushedTagReuse(t *testing.T) {
	fs := &blockingFS{release: make(chan struct{})}
	a, b := NewPipe()
	go Serve(b, func(uname, aname string) (vfs.Node, error) { return fs.Attach("") })
	cl, err := NewClient(a)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root, err := cl.Attach("u", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}

	// A hand-tagged read parks in the server...
	const tag = 99
	cl.mu.Lock()
	cl.tags[tag] = vclock.NewMailbox[*Fcall](nil, 1)
	cl.mu.Unlock()
	msg, _ := MarshalFcall(&Fcall{Type: Tread, Tag: tag, Fid: 2, Count: 64})
	if err := cl.conn.WriteMsg(msg); err != nil {
		t.Fatal(err)
	}
	// ...and is flushed, which per the flush contract frees the tag.
	if r, err := cl.RPC(&Fcall{Type: Tflush, Oldtag: tag}); err != nil || r.Type != Rflush {
		t.Fatalf("flush = %+v, %v", r, err)
	}
	cl.mu.Lock()
	delete(cl.tags, tag)
	cl.mu.Unlock()

	// Recycle the tag for a fresh request while the flushed read is
	// still parked. Its reply must come back — a server that keyed
	// flush state by tag alone would consume the stale mark here and
	// drop it.
	reuse := vclock.NewMailbox[*Fcall](nil, 1)
	cl.mu.Lock()
	cl.tags[tag] = reuse
	cl.mu.Unlock()
	msg, _ = MarshalFcall(&Fcall{Type: Tstat, Tag: tag, Fid: 1})
	if err := cl.conn.WriteMsg(msg); err != nil {
		t.Fatal(err)
	}
	reuseDone := make(chan *Fcall, 1)
	go func() {
		if r, ok := reuse.Recv(); ok {
			reuseDone <- r
		}
	}()
	select {
	case r := <-reuseDone:
		if r.Type != Rstat {
			t.Fatalf("recycled tag answered with %s, want Rstat", TypeName(r.Type))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request on recycled tag never answered (stale flush state swallowed it)")
	}

	// Release the parked read: its stale reply must stay suppressed
	// even though the tag has moved on.
	stale := vclock.NewMailbox[*Fcall](nil, 1)
	cl.mu.Lock()
	cl.tags[tag] = stale
	cl.mu.Unlock()
	close(fs.release)
	time.Sleep(100 * time.Millisecond)
	if r, ok := stale.TryRecv(); ok {
		t.Fatalf("stale flushed reply surfaced under recycled tag: %+v", r)
	}
	cl.mu.Lock()
	delete(cl.tags, tag)
	cl.mu.Unlock()
	f.Clunk()
}

// TestFlushedQueuedReadSkipsHandle: a Tread flushed while waiting its
// per-fid ticket turn must never reach the handle — on a delimited or
// stream device the abandoned read would consume data the client never
// sees. The flushed request holds a ticket behind a parked read; when
// the queue advances it must skip the handle entirely.
func TestFlushedQueuedReadSkipsHandle(t *testing.T) {
	fs := &blockingFS{release: make(chan struct{})}
	a, b := NewPipe()
	go Serve(b, func(uname, aname string) (vfs.Node, error) { return fs.Attach("") })
	cl, err := NewClient(a)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root, err := cl.Attach("u", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}

	// First read parks in the handle; second queues behind it on the
	// fid's read-ticket queue.
	p1, err := f.ReadAsync(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.ReadAsync(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Flush the queued read. Tflush is answered in the server's main
	// loop, so the mark lands before the queue can advance.
	p2.Flush()
	// Release the parked read; the flushed one's turn comes and must
	// be skipped.
	close(fs.release)
	if _, err := p1.Wait(); err != nil {
		t.Fatalf("unflushed read: %v", err)
	}
	// The skipped request produces no reply to wait on, so watch the
	// handle over a grace window: the queue advanced when read #1
	// answered, and the flushed read must never touch the device.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if got := fs.reads.Load(); got != 1 {
			t.Fatalf("handle saw %d reads, want 1: a flushed queued read touched the device", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.Clunk()
}
