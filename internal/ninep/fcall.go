// Package ninep implements the 9P file protocol as the paper describes
// it (§2.1): "The protocol consists of 17 messages describing
// operations on files and directories." This is the 1993 dialect —
// fixed-length name fields (NAMELEN 28), session/attach connection
// setup, separate clone and walk (plus the clwalk combination), a
// stat record identical to a directory-read record — with two widenings
// for a modern host: 64-bit file offsets and 64-bit qid paths.
//
// The 17 message operations are: nop, session, auth, attach, clone,
// walk, clwalk, open, create, read, write, clunk, remove, stat, wstat,
// flush, and error (which exists only in its R form).
//
// 9P relies on the transport preserving message delimiters (§2.1); the
// MsgConn interface captures that. For byte-stream transports such as
// TCP, which do not preserve delimiters, the package provides the
// marshaling adapter the paper alludes to ("we provide mechanisms to
// marshal messages before handing them to the system").
package ninep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/block"
	"repro/internal/vfs"
)

// Protocol limits, as in the 1993 kernel.
const (
	NameLen  = 28   // length of name fields (NAMELEN)
	ErrLen   = 64   // length of error strings (ERRLEN)
	MaxFData = 8192 // max data in a single read/write (MAXFDATA)
	// MaxMsg bounds a marshaled message: header + fixed fields + data.
	MaxMsg = MaxFData + 160

	// NoTag is the tag of messages outside any RPC (none here, but
	// kept for fidelity with fcall.h).
	NoTag = 0xFFFF
	// NoFid is the nil fid value.
	NoFid = ^uint32(0)
)

// Message types. T messages are requests, R messages responses; the
// response type is always the request type plus one. Terror is illegal:
// only Rerror exists.
const (
	Tnop uint8 = 50 + iota
	Rnop
	Tsession
	Rsession
	Terror // illegal
	Rerror
	Tflush
	Rflush
	Tattach
	Rattach
	Tclone
	Rclone
	Twalk
	Rwalk
	Topen
	Ropen
	Tcreate
	Rcreate
	Tread
	Rread
	Twrite
	Rwrite
	Tclunk
	Rclunk
	Tremove
	Rremove
	Tstat
	Rstat
	Twstat
	Rwstat
	Tclwalk
	Rclwalk
	Tauth
	Rauth
	Tmax
)

var typeNames = map[uint8]string{
	Tnop: "Tnop", Rnop: "Rnop",
	Tsession: "Tsession", Rsession: "Rsession",
	Rerror: "Rerror",
	Tflush: "Tflush", Rflush: "Rflush",
	Tattach: "Tattach", Rattach: "Rattach",
	Tclone: "Tclone", Rclone: "Rclone",
	Twalk: "Twalk", Rwalk: "Rwalk",
	Topen: "Topen", Ropen: "Ropen",
	Tcreate: "Tcreate", Rcreate: "Rcreate",
	Tread: "Tread", Rread: "Rread",
	Twrite: "Twrite", Rwrite: "Rwrite",
	Tclunk: "Tclunk", Rclunk: "Rclunk",
	Tremove: "Tremove", Rremove: "Rremove",
	Tstat: "Tstat", Rstat: "Rstat",
	Twstat: "Twstat", Rwstat: "Rwstat",
	Tclwalk: "Tclwalk", Rclwalk: "Rclwalk",
	Tauth: "Tauth", Rauth: "Rauth",
}

// TypeName returns the symbolic name of a message type.
func TypeName(t uint8) string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Tunknown(%d)", t)
}

// Fcall is the in-memory form of any 9P message, as in fcall(2); the
// Type field selects which other fields are meaningful.
type Fcall struct {
	Type   uint8
	Tag    uint16
	Fid    uint32
	Newfid uint32 // clone, clwalk
	Oldtag uint16 // flush
	Uname  string // attach, auth
	Aname  string // attach
	Chal   string // session, auth challenge/ticket
	Name   string // walk, clwalk, create
	Perm   uint32 // create
	Mode   uint8  // open, create
	Offset int64  // read, write
	Count  uint16 // read, write
	Data   []byte // write request, read response
	Qid    vfs.Qid
	Stat   vfs.Dir // stat response, wstat request
	Ename  string  // error response

	// recycle, when non-nil, is a pooled buffer backing Data that the
	// final consumer of the Fcall returns with block.PutBytes (the
	// server does so after marshaling a response). It never crosses
	// the wire.
	recycle []byte

	// blk, when non-nil, is a refcounted block backing Data — a cache
	// fragment serving an Rread zero-copy. The final consumer (the
	// server, after marshaling) drops the reference with Free; other
	// holders of the block are unaffected. It never crosses the wire.
	blk *block.Block
}

func (f *Fcall) String() string {
	switch f.Type {
	case Rerror:
		return fmt.Sprintf("%s tag %d ename %q", TypeName(f.Type), f.Tag, f.Ename)
	case Twalk, Tclwalk, Tcreate:
		return fmt.Sprintf("%s tag %d fid %d name %q", TypeName(f.Type), f.Tag, f.Fid, f.Name)
	case Tread, Rread, Twrite, Rwrite:
		return fmt.Sprintf("%s tag %d fid %d offset %d count %d", TypeName(f.Type), f.Tag, f.Fid, f.Offset, f.Count)
	default:
		return fmt.Sprintf("%s tag %d fid %d", TypeName(f.Type), f.Tag, f.Fid)
	}
}

// Marshaling errors.
var (
	ErrBadMsg   = errors.New("9P: malformed message")
	ErrBadType  = errors.New("9P: bad message type")
	ErrTooBig   = errors.New("9P: message too long")
	ErrNameLen  = errors.New("9P: name too long")
	ErrDataLen  = errors.New("9P: data count too large")
	ErrShortMsg = errors.New("9P: message truncated")
)

type coder struct {
	buf []byte
	off int
	err error
}

func (c *coder) pu8(v uint8) { c.buf = append(c.buf, v) }
func (c *coder) pu16(v uint16) {
	c.buf = binary.LittleEndian.AppendUint16(c.buf, v)
}
func (c *coder) pu32(v uint32) {
	c.buf = binary.LittleEndian.AppendUint32(c.buf, v)
}
func (c *coder) pu64(v uint64) {
	c.buf = binary.LittleEndian.AppendUint64(c.buf, v)
}

// pname appends a fixed-length NUL-padded string field.
func (c *coder) pname(s string, n int) {
	if len(s) >= n {
		c.err = ErrNameLen
		s = s[:n-1]
	}
	var pad [ErrLen]byte
	copy(pad[:], s)
	c.buf = append(c.buf, pad[:n]...)
}

func (c *coder) pqid(q vfs.Qid) {
	c.pu64(q.Path)
	c.pu32(q.Vers)
	c.pu8(q.Type)
}

func (c *coder) gu8() uint8 {
	if c.err != nil || c.off+1 > len(c.buf) {
		c.fail()
		return 0
	}
	v := c.buf[c.off]
	c.off++
	return v
}

func (c *coder) gu16() uint16 {
	if c.err != nil || c.off+2 > len(c.buf) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(c.buf[c.off:])
	c.off += 2
	return v
}

func (c *coder) gu32() uint32 {
	if c.err != nil || c.off+4 > len(c.buf) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.buf[c.off:])
	c.off += 4
	return v
}

func (c *coder) gu64() uint64 {
	if c.err != nil || c.off+8 > len(c.buf) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.buf[c.off:])
	c.off += 8
	return v
}

func (c *coder) gname(n int) string {
	if c.err != nil || c.off+n > len(c.buf) {
		c.fail()
		return ""
	}
	s := string(c.buf[c.off : c.off+n])
	c.off += n
	i := strings.IndexByte(s, 0)
	if i < 0 {
		// A fixed-length string field with no NUL terminator is
		// malformed: pname always leaves room for one, so accepting
		// the field would parse messages that cannot round-trip.
		c.err = ErrNameLen
		return ""
	}
	return s[:i]
}

func (c *coder) gqid() vfs.Qid {
	return vfs.Qid{Path: c.gu64(), Vers: c.gu32(), Type: c.gu8()}
}

func (c *coder) fail() {
	if c.err == nil {
		c.err = ErrShortMsg
	}
}

// MarshalFcall encodes f into wire form (convS2M). The returned buffer
// is pool-backed; a MsgConn WriteMsg takes ownership of it and recycles
// it once it is on the wire.
func MarshalFcall(f *Fcall) ([]byte, error) {
	c := &coder{buf: block.GetBytes(128 + len(f.Data))[:0]}
	c.pu32(0) // size, patched below
	c.pu8(f.Type)
	c.pu16(f.Tag)
	switch f.Type {
	case Tnop, Rnop, Rflush:
	case Tsession, Rsession:
		c.pname(f.Chal, NameLen)
	case Rerror:
		c.pname(f.Ename, ErrLen)
	case Tflush:
		c.pu16(f.Oldtag)
	case Tattach:
		c.pu32(f.Fid)
		c.pname(f.Uname, NameLen)
		c.pname(f.Aname, NameLen)
	case Rattach:
		c.pu32(f.Fid)
		c.pqid(f.Qid)
	case Tauth:
		c.pu32(f.Fid)
		c.pname(f.Uname, NameLen)
		c.pname(f.Chal, NameLen)
	case Rauth:
		c.pname(f.Chal, NameLen)
	case Tclone:
		c.pu32(f.Fid)
		c.pu32(f.Newfid)
	case Rclone, Rclunk, Rremove, Rwstat:
		c.pu32(f.Fid)
	case Twalk:
		c.pu32(f.Fid)
		c.pname(f.Name, NameLen)
	case Rwalk, Ropen, Rcreate, Rclwalk:
		c.pu32(f.Fid)
		c.pqid(f.Qid)
	case Tclwalk:
		c.pu32(f.Fid)
		c.pu32(f.Newfid)
		c.pname(f.Name, NameLen)
	case Topen:
		c.pu32(f.Fid)
		c.pu8(f.Mode)
	case Tcreate:
		c.pu32(f.Fid)
		c.pname(f.Name, NameLen)
		c.pu32(f.Perm)
		c.pu8(f.Mode)
	case Tread:
		c.pu32(f.Fid)
		c.pu64(uint64(f.Offset))
		c.pu16(f.Count)
	case Rread:
		if len(f.Data) > MaxFData {
			return nil, ErrDataLen
		}
		c.pu32(f.Fid)
		c.pu16(uint16(len(f.Data)))
		c.buf = append(c.buf, f.Data...)
	case Twrite:
		if len(f.Data) > MaxFData {
			return nil, ErrDataLen
		}
		c.pu32(f.Fid)
		c.pu64(uint64(f.Offset))
		c.pu16(uint16(len(f.Data)))
		c.buf = append(c.buf, f.Data...)
	case Rwrite:
		c.pu32(f.Fid)
		c.pu16(f.Count)
	case Tclunk, Tremove, Tstat:
		c.pu32(f.Fid)
	case Rstat:
		c.pu32(f.Fid)
		var err error
		c.buf, err = vfs.MarshalDir(c.buf, f.Stat)
		if err != nil {
			return nil, err
		}
	case Twstat:
		c.pu32(f.Fid)
		var err error
		c.buf, err = vfs.MarshalDir(c.buf, f.Stat)
		if err != nil {
			return nil, err
		}
	default:
		return nil, ErrBadType
	}
	if c.err != nil {
		return nil, c.err
	}
	if len(c.buf) > MaxMsg {
		return nil, ErrTooBig
	}
	binary.LittleEndian.PutUint32(c.buf, uint32(len(c.buf)))
	return c.buf, nil
}

// UnmarshalFcall decodes one wire message (convM2S).
func UnmarshalFcall(p []byte) (*Fcall, error) {
	if len(p) < 7 {
		return nil, ErrShortMsg
	}
	size := binary.LittleEndian.Uint32(p)
	if int(size) != len(p) {
		return nil, ErrBadMsg
	}
	c := &coder{buf: p, off: 4}
	f := &Fcall{Type: c.gu8(), Tag: c.gu16()}
	switch f.Type {
	case Tnop, Rnop, Rflush:
	case Tsession, Rsession:
		f.Chal = c.gname(NameLen)
	case Rerror:
		f.Ename = c.gname(ErrLen)
	case Tflush:
		f.Oldtag = c.gu16()
	case Tattach:
		f.Fid = c.gu32()
		f.Uname = c.gname(NameLen)
		f.Aname = c.gname(NameLen)
	case Rattach:
		f.Fid = c.gu32()
		f.Qid = c.gqid()
	case Tauth:
		f.Fid = c.gu32()
		f.Uname = c.gname(NameLen)
		f.Chal = c.gname(NameLen)
	case Rauth:
		f.Chal = c.gname(NameLen)
	case Tclone:
		f.Fid = c.gu32()
		f.Newfid = c.gu32()
	case Rclone, Rclunk, Rremove, Rwstat:
		f.Fid = c.gu32()
	case Twalk:
		f.Fid = c.gu32()
		f.Name = c.gname(NameLen)
	case Rwalk, Ropen, Rcreate, Rclwalk:
		f.Fid = c.gu32()
		f.Qid = c.gqid()
	case Tclwalk:
		f.Fid = c.gu32()
		f.Newfid = c.gu32()
		f.Name = c.gname(NameLen)
	case Topen:
		f.Fid = c.gu32()
		f.Mode = c.gu8()
	case Tcreate:
		f.Fid = c.gu32()
		f.Name = c.gname(NameLen)
		f.Perm = c.gu32()
		f.Mode = c.gu8()
	case Tread:
		f.Fid = c.gu32()
		f.Offset = int64(c.gu64())
		f.Count = c.gu16()
	case Rread:
		f.Fid = c.gu32()
		n := int(c.gu16())
		if c.err == nil && (n > MaxFData || c.off+n > len(p)) {
			return nil, ErrBadMsg
		}
		if c.err == nil {
			f.Data = append([]byte(nil), p[c.off:c.off+n]...)
			c.off += n
			f.Count = uint16(n)
		}
	case Twrite:
		f.Fid = c.gu32()
		f.Offset = int64(c.gu64())
		n := int(c.gu16())
		if c.err == nil && (n > MaxFData || c.off+n > len(p)) {
			return nil, ErrBadMsg
		}
		if c.err == nil {
			f.Data = append([]byte(nil), p[c.off:c.off+n]...)
			c.off += n
			f.Count = uint16(n)
		}
	case Rwrite:
		f.Fid = c.gu32()
		f.Count = c.gu16()
	case Tclunk, Tremove, Tstat:
		f.Fid = c.gu32()
	case Rstat, Twstat:
		f.Fid = c.gu32()
		if c.err == nil {
			if c.off+vfs.DirRecLen > len(p) {
				return nil, ErrBadMsg
			}
			d, err := vfs.UnmarshalDir(p[c.off:])
			if err != nil {
				return nil, err
			}
			f.Stat = d
			c.off += vfs.DirRecLen
		}
	default:
		return nil, ErrBadType
	}
	if c.err != nil {
		return nil, c.err
	}
	return f, nil
}
