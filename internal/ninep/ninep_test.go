package ninep

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/ramfs"
	"repro/internal/vfs"
)

// startServer runs a 9P server over a pipe serving a fresh ramfs and
// returns a connected client plus the backing fs.
func startServer(t *testing.T) (*Client, *ramfs.FS) {
	t.Helper()
	fs := ramfs.New("bootes")
	a, b := NewPipe()
	go Serve(b, func(uname, aname string) (vfs.Node, error) {
		return fs.Root(), nil
	})
	cl, err := NewClient(a)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, fs
}

func TestSessionAttachWalkReadWrite(t *testing.T) {
	cl, fs := startServer(t)
	fs.WriteFile("dir/hello", []byte("hello 9P"), 0664)

	root, err := cl.Attach("glenda", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.CloneWalk("dir")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Walk("hello"); err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := f.Read(buf, 0)
	if err != nil || string(buf[:n]) != "hello 9P" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	if err := f.Clunk(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateWriteRemove(t *testing.T) {
	cl, fs := startServer(t)
	root, _ := cl.Attach("glenda", "")
	f, err := root.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Create("new", 0664, vfs.OWRITE); err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("payload"), 0); err != nil || n != 7 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if b, _ := fs.ReadFile("new"); string(b) != "payload" {
		t.Errorf("server contents %q", b)
	}
	if err := f.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("new"); err == nil {
		t.Error("file survived Tremove")
	}
}

func TestStatWstat(t *testing.T) {
	cl, fs := startServer(t)
	fs.WriteFile("f", []byte("xyz"), 0664)
	root, _ := cl.Attach("glenda", "")
	f, err := root.CloneWalk("f")
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Stat()
	if err != nil || d.Name != "f" || d.Length != 3 {
		t.Fatalf("stat %+v, %v", d, err)
	}
	if err := f.Wstat(vfs.Dir{Name: "g", Mode: ^uint32(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("g"); err != nil {
		t.Error("wstat rename did not take")
	}
	f.Clunk()
}

func TestErrorsCrossTheWire(t *testing.T) {
	cl, _ := startServer(t)
	root, _ := cl.Attach("glenda", "")
	_, err := root.CloneWalk("missing")
	if err == nil || err.Error() != vfs.ErrNotExist.Error() {
		t.Errorf("walk error = %v, want %v", err, vfs.ErrNotExist)
	}
	if !vfs.SameError(err, vfs.ErrNotExist) {
		t.Error("SameError does not match reconstructed 9P error")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	cl, fs := startServer(t)
	fs.WriteFile("a/f", nil, 0664)
	root, _ := cl.Attach("glenda", "")
	c1, _ := root.Clone()
	if err := c1.Walk("a"); err != nil {
		t.Fatal(err)
	}
	// root is still at /.
	c2, err := root.CloneWalk("a")
	if err != nil {
		t.Fatalf("root moved by clone's walk: %v", err)
	}
	c1.Clunk()
	c2.Clunk()
}

func TestOpenFidCannotWalk(t *testing.T) {
	cl, fs := startServer(t)
	fs.WriteFile("d/f", nil, 0664)
	root, _ := cl.Attach("glenda", "")
	d, _ := root.CloneWalk("d")
	if err := d.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}
	if err := d.Walk("f"); err == nil {
		t.Error("walk on open fid succeeded")
	}
	d.Clunk()
}

func TestLargeTransferSplitsIntoRPCs(t *testing.T) {
	cl, fs := startServer(t)
	big := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	fs.WriteFile("big", big, 0664)
	root, _ := cl.Attach("glenda", "")
	f, _ := root.CloneWalk("big")
	f.Open(vfs.OREAD)
	got := make([]byte, len(big))
	n, err := f.Read(got, 0)
	if err != nil || n != len(big) {
		t.Fatalf("read %d of %d: %v", n, len(big), err)
	}
	if !bytes.Equal(got, big) {
		t.Error("large read corrupted")
	}
	// And a large write back.
	w, _ := root.Clone()
	if err := w.Create("copy", 0664, vfs.OWRITE); err != nil {
		t.Fatal(err)
	}
	if n, err := w.Write(big, 0); err != nil || n != len(big) {
		t.Fatalf("write %d of %d: %v", n, len(big), err)
	}
	if b, _ := fs.ReadFile("copy"); !bytes.Equal(b, big) {
		t.Error("large write corrupted")
	}
	f.Clunk()
	w.Clunk()
}

func TestDirectoryReadOver9P(t *testing.T) {
	cl, fs := startServer(t)
	fs.WriteFile("x", nil, 0664)
	fs.WriteFile("y", nil, 0664)
	root, _ := cl.Attach("glenda", "")
	d, _ := root.Clone()
	if err := d.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*vfs.DirRecLen)
	n, err := d.Read(buf, 0)
	if err != nil || n != 2*vfs.DirRecLen {
		t.Fatalf("dir read %d, %v", n, err)
	}
	e0, _ := vfs.UnmarshalDir(buf)
	e1, _ := vfs.UnmarshalDir(buf[vfs.DirRecLen:])
	if e0.Name != "x" || e1.Name != "y" {
		t.Errorf("entries %q %q", e0.Name, e1.Name)
	}
	d.Clunk()
}

func TestConcurrentRPCs(t *testing.T) {
	cl, fs := startServer(t)
	fs.WriteFile("f", bytes.Repeat([]byte("z"), 1024), 0664)
	root, _ := cl.Attach("glenda", "")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for range 32 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := root.CloneWalk("f")
			if err != nil {
				errs <- err
				return
			}
			defer f.Clunk()
			if err := f.Open(vfs.OREAD); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 1024)
			if _, err := f.Read(buf, 0); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFlushUnblocksNothingButAnswers(t *testing.T) {
	cl, _ := startServer(t)
	// Flushing a tag that is not in flight must still get Rflush.
	r, err := cl.RPC(&Fcall{Type: Tflush, Oldtag: 12345})
	if err != nil || r.Type != Rflush {
		t.Errorf("flush = %+v, %v", r, err)
	}
}

func TestNopAndAuth(t *testing.T) {
	cl, _ := startServer(t)
	if _, err := cl.RPC(&Fcall{Type: Tnop}); err != nil {
		t.Errorf("nop: %v", err)
	}
	r, err := cl.RPC(&Fcall{Type: Tauth, Fid: 9, Uname: "glenda", Chal: "c"})
	if err != nil || r.Chal == "" {
		t.Errorf("auth = %+v, %v", r, err)
	}
}

func TestServerSurvivesUnknownFid(t *testing.T) {
	cl, _ := startServer(t)
	if _, err := cl.RPC(&Fcall{Type: Tclunk, Fid: 999}); err == nil {
		t.Error("clunk of unknown fid succeeded")
	}
	// The connection still works afterwards.
	if _, err := cl.Attach("glenda", ""); err != nil {
		t.Errorf("attach after error: %v", err)
	}
}

func TestClientCloseFailsPendingRPCs(t *testing.T) {
	a, b := NewPipe()
	blockOpen := make(chan struct{})
	fs := ramfs.New("u")
	fs.WriteFile("f", nil, 0664)
	go Serve(b, func(uname, aname string) (vfs.Node, error) {
		<-blockOpen
		return fs.Root(), nil
	})
	cl, err := NewClient(a)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.Attach("u", "")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cl.Close()
	close(blockOpen)
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending RPC succeeded after close")
		}
	case <-time.After(time.Second):
		t.Error("pending RPC hung after close")
	}
}

func TestPipeSemantics(t *testing.T) {
	a, b := NewPipe()
	if err := a.WriteMsg([]byte("one")); err != nil {
		t.Fatal(err)
	}
	m, err := b.ReadMsg()
	if err != nil || string(m) != "one" {
		t.Fatalf("read %q, %v", m, err)
	}
	// Close: peer reads drain then EOF.
	a.WriteMsg([]byte("two"))
	a.Close()
	m, err = b.ReadMsg()
	if err != nil || string(m) != "two" {
		t.Fatalf("drain read %q, %v", m, err)
	}
	if _, err := b.ReadMsg(); err != io.EOF {
		t.Errorf("post-close read err = %v, want EOF", err)
	}
	if err := b.WriteMsg([]byte("x")); err == nil {
		t.Error("write to closed peer succeeded")
	}
}

func TestStreamConnFraming(t *testing.T) {
	// A streamConn over an in-memory byte pipe delivers whole 9P
	// messages even when the underlying stream fragments them.
	pr, pw := io.Pipe()
	sc := NewStreamConn(struct {
		io.Reader
		io.Writer
		io.Closer
	}{pr, io.Discard, pr})
	msg, _ := MarshalFcall(&Fcall{Type: Twalk, Tag: 5, Fid: 1, Name: "x"})
	go func() {
		for _, c := range msg { // byte-at-a-time: worst-case fragmentation
			pw.Write([]byte{c})
		}
	}()
	got, err := sc.ReadMsg()
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("framed read mismatch: %v", err)
	}
}

func TestStreamConnRejectsBadSize(t *testing.T) {
	pr, pw := io.Pipe()
	// ReadMsg rejects after the 4-byte header; closing the read end
	// unblocks the writer goroutine stuck on the unconsumed tail.
	defer pr.Close()
	sc := NewStreamConn(struct {
		io.Reader
		io.Writer
		io.Closer
	}{pr, io.Discard, pr})
	go pw.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0})
	if _, err := sc.ReadMsg(); err != ErrBadMsg {
		t.Errorf("oversize frame err = %v", err)
	}
}
