package ninep

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ramfs"
	"repro/internal/vfs"
)

// countingConn wraps a MsgConn and counts outgoing messages by 9P
// type (the type byte sits after the 4-byte size prefix).
type countingConn struct {
	MsgConn
	counts [256]atomic.Int64
}

func (c *countingConn) WriteMsg(p []byte) error {
	if len(p) >= 5 {
		c.counts[p[4]].Add(1)
	}
	return c.MsgConn.WriteMsg(p)
}

func (c *countingConn) count(typ uint8) int64 { return c.counts[typ].Load() }

// startCountingServer is startServer with a tap on the client's
// outgoing messages and an explicit client configuration.
func startCountingServer(t *testing.T, cfg ClientConfig) (*Client, *countingConn, *ramfs.FS) {
	t.Helper()
	fs := ramfs.New("bootes")
	a, b := NewPipe()
	go Serve(b, func(uname, aname string) (vfs.Node, error) {
		return fs.Root(), nil
	})
	cc := &countingConn{MsgConn: a}
	cl, err := NewClientConfig(cc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, cc, fs
}

func openFile(t *testing.T, cl *Client, name string, mode int) *Fid {
	t.Helper()
	root, err := cl.Attach("glenda", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.CloneWalk(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(mode); err != nil {
		t.Fatal(err)
	}
	return f
}

func pattern(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + i>>9)
	}
	return p
}

// TestWindowedReadCorrectness: a multi-fragment read through the
// window returns exactly the serial result, for sizes on and off the
// fragment boundary.
func TestWindowedReadCorrectness(t *testing.T) {
	cl, _, fs := startCountingServer(t, ClientConfig{WindowedTransfers: true, Window: 4})
	for _, size := range []int{MaxFData + 1, 3 * MaxFData, 5*MaxFData - 77, 100 << 10} {
		want := pattern(size)
		fs.WriteFile("big", want, 0664)
		f := openFile(t, cl, "big", vfs.OREAD)
		got := make([]byte, size+MaxFData) // oversized buffer: EOF truncates
		n, err := f.Read(got, 0)
		if err != nil {
			t.Fatalf("size %d: read: %v", size, err)
		}
		if n != size {
			t.Fatalf("size %d: read %d bytes", size, n)
		}
		if !bytes.Equal(got[:n], want) {
			t.Fatalf("size %d: content mismatch", size)
		}
		f.Clunk()
	}
}

// TestWindowedWriteCorrectness: a multi-fragment write lands intact.
func TestWindowedWriteCorrectness(t *testing.T) {
	cl, _, fs := startCountingServer(t, ClientConfig{WindowedTransfers: true, Window: 4})
	root, _ := cl.Attach("glenda", "")
	f, err := root.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Create("out", 0664, vfs.OWRITE); err != nil {
		t.Fatal(err)
	}
	want := pattern(5*MaxFData - 123)
	if n, err := f.Write(want, 0); err != nil || n != len(want) {
		t.Fatalf("write = %d, %v", n, err)
	}
	f.Clunk()
	if got, _ := fs.ReadFile("out"); !bytes.Equal(got, want) {
		t.Fatalf("content mismatch: %d vs %d bytes", len(got), len(want))
	}
}

// TestSmallReadSingleRPC pins the invariant that a read of at most
// MaxFData bytes costs exactly one Tread, window or no window.
func TestSmallReadSingleRPC(t *testing.T) {
	cl, cc, fs := startCountingServer(t, ClientConfig{WindowedTransfers: true, Window: 8})
	fs.WriteFile("small", pattern(MaxFData), 0664)
	f := openFile(t, cl, "small", vfs.OREAD)
	before := cc.count(Tread)
	buf := make([]byte, MaxFData)
	if n, err := f.Read(buf, 0); err != nil || n != MaxFData {
		t.Fatalf("read = %d, %v", n, err)
	}
	if got := cc.count(Tread) - before; got != 1 {
		t.Fatalf("read of MaxFData issued %d Treads, want 1", got)
	}
	f.Clunk()
}

// gateFS serves one file whose reads at or past a gate offset block
// until released. It pins the speculative tail of a windowed read in
// the server, so the client provably still has those fragments
// outstanding when the short reply truncates the transfer — without
// the gate, fast EOF replies can race the truncation and the flush
// batch legitimately has nothing left to abandon.
type gateFS struct {
	content []byte
	gate    int64
	release chan struct{}
}

func (f *gateFS) Root() vfs.Node { return gateNode{f: f} }

type gateNode struct{ f *gateFS }

func (n gateNode) Stat() (vfs.Dir, error) {
	return vfs.Dir{Name: "gate", Mode: 0666, Length: int64(len(n.f.content)), Qid: vfs.Qid{Path: 4}}, nil
}
func (n gateNode) Walk(name string) (vfs.Node, error) { return nil, vfs.ErrNotExist }
func (n gateNode) Open(mode int) (vfs.Handle, error)  { return gateHandle{f: n.f}, nil }

type gateHandle struct{ f *gateFS }

func (h gateHandle) Read(p []byte, off int64) (int, error) {
	if off >= h.f.gate {
		<-h.f.release
	}
	if off >= int64(len(h.f.content)) {
		return 0, nil
	}
	return copy(p, h.f.content[off:]), nil
}
func (h gateHandle) Write(p []byte, off int64) (int, error) { return len(p), nil }
func (h gateHandle) Close() error                           { return nil }

// TestWindowedShortReadTruncates: when an early fragment comes back
// short (EOF inside the window), the bytes past it — already
// speculatively requested — must not leak into the result, and the
// later fragments are abandoned with Tflush rather than waited on.
// The gate holds the speculative tail in the server so exactly the
// three fragments past the short one are still in flight at
// truncation time.
func TestWindowedShortReadTruncates(t *testing.T) {
	size := 2*MaxFData + 100 // third fragment comes back short
	want := pattern(size)
	fs := &gateFS{content: want, gate: 3 * MaxFData, release: make(chan struct{})}
	t.Cleanup(func() { close(fs.release) })
	a, b := NewPipe()
	go Serve(b, func(uname, aname string) (vfs.Node, error) { return fs.Root(), nil })
	cc := &countingConn{MsgConn: a}
	cl, err := NewClientConfig(cc, ClientConfig{WindowedTransfers: true, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	root, err := cl.Attach("u", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6*MaxFData) // fans into 6 fragments, 3 past the gate
	n, err := f.Read(got, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n != size || !bytes.Equal(got[:n], want) {
		t.Fatalf("read %d bytes, want %d", n, size)
	}
	if flushes := cc.count(Tflush); flushes != 3 {
		t.Fatalf("short read in the window sent %d Tflushes, want 3 (one per gated speculative fragment)", flushes)
	}
	f.Clunk()
}

// streamFS serves one stream-like file: each read returns at most 100
// bytes, like a delimited device delivering one message per Tread, and
// counts how many reads reach the handle.
type streamFS struct {
	reads atomic.Int64
}

func (f *streamFS) Root() vfs.Node { return streamNode{f: f} }

type streamNode struct{ f *streamFS }

func (n streamNode) Stat() (vfs.Dir, error) {
	return vfs.Dir{Name: "stream", Mode: 0666, Qid: vfs.Qid{Path: 3}}, nil
}
func (n streamNode) Walk(name string) (vfs.Node, error) { return nil, vfs.ErrNotExist }
func (n streamNode) Open(mode int) (vfs.Handle, error)  { return streamHandle{f: n.f}, nil }

type streamHandle struct{ f *streamFS }

func (h streamHandle) Read(p []byte, off int64) (int, error) {
	h.f.reads.Add(1)
	n := min(len(p), 100)
	for i := range p[:n] {
		p[i] = 'm'
	}
	return n, nil
}
func (h streamHandle) Write(p []byte, off int64) (int, error) { return len(p), nil }
func (h streamHandle) Close() error                           { return nil }

// TestDefaultConfigReadsSerial pins the zero ClientConfig's safety
// contract on delimited and stream devices: a large read issues
// exactly one Tread at a time and a short reply ends it, so no
// speculative fragment ever reaches the server to consume stream data
// it would then throw away. (Fan-out is an explicit opt-in —
// WindowedTransfers — for plain file trees.)
func TestDefaultConfigReadsSerial(t *testing.T) {
	fs := &streamFS{}
	a, b := NewPipe()
	go Serve(b, func(uname, aname string) (vfs.Node, error) { return fs.Root(), nil })
	cc := &countingConn{MsgConn: a}
	cl, err := NewClientConfig(cc, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root, err := cl.Attach("u", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3*MaxFData) // would fan into 3 Treads if windowed
	n, err := f.Read(buf, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n != 100 {
		t.Fatalf("read = %d bytes, want the single 100-byte message", n)
	}
	if got := cc.count(Tread); got != 1 {
		t.Fatalf("default-config large read issued %d Treads, want 1", got)
	}
	if got := fs.reads.Load(); got != 1 {
		t.Fatalf("server handle saw %d reads, want 1 (speculative fragment consumed stream data)", got)
	}
	f.Clunk()
}

// TestTagExhaustionBlocks is the regression test for the tag
// allocator: when every tag up to MaxInFlight is outstanding, the
// next RPC must park on the condition variable (not spin) and resume
// as soon as a tag frees.
func TestTagExhaustionBlocks(t *testing.T) {
	fs := &blockingFS{release: make(chan struct{})}
	a, b := NewPipe()
	go Serve(b, func(uname, aname string) (vfs.Node, error) { return fs.Attach("") })
	// Window 1 keeps Fid.Read serial; MaxInFlight 3 leaves room for
	// the two parked reads plus the probe that must block.
	cl, err := NewClientConfig(a, ClientConfig{Window: 1, MaxInFlight: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root, err := cl.Attach("u", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vfs.OREAD); err != nil {
		t.Fatal(err)
	}

	// Fill the in-flight budget with reads the server will hold.
	var pends []*Pending
	for range 3 {
		p, err := f.ReadAsync(0, 8)
		if err != nil {
			t.Fatal(err)
		}
		pends = append(pends, p)
	}

	// The budget is spent: the next RPC must block in allocTag.
	statDone := make(chan error, 1)
	go func() {
		_, err := root.Stat()
		statDone <- err
	}()
	select {
	case err := <-statDone:
		t.Fatalf("rpc past the in-flight cap returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Releasing the server lets the parked reads answer, freeing tags;
	// the blocked RPC must complete promptly.
	close(fs.release)
	select {
	case err := <-statDone:
		if err != nil {
			t.Fatalf("stat after tags freed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("rpc still blocked after tags freed")
	}
	var wg sync.WaitGroup
	for _, p := range pends {
		wg.Add(1)
		go func() { defer wg.Done(); p.Wait() }()
	}
	wg.Wait()
	f.Clunk()
}

// TestWindowClampedToMaxInFlight: the window can never exceed the tag
// budget, or a single large read would deadlock against itself.
func TestWindowClampedToMaxInFlight(t *testing.T) {
	cfg := ClientConfig{Window: 64, MaxInFlight: 4}.withDefaults()
	if cfg.Window != 4 {
		t.Fatalf("window = %d, want clamped to 4", cfg.Window)
	}
}
