package ninep

import (
	"reflect"
	"testing"
)

// Fuzz9PMessage throws arbitrary bytes at the 9P message parser — the
// bytes a file server reads straight off a network conversation, the
// most exposed parser in the system. The contract: UnmarshalFcall
// either rejects the input or produces an Fcall that marshals and
// re-unmarshals to the identical message.
func Fuzz9PMessage(f *testing.F) {
	seed := func(fc *Fcall) {
		p, err := MarshalFcall(fc)
		if err != nil {
			f.Fatalf("seed %s: %v", fc, err)
		}
		f.Add(p)
	}
	seed(&Fcall{Type: Tnop, Tag: 0xffff})
	seed(&Fcall{Type: Tattach, Tag: 1, Fid: 0, Uname: "philw", Aname: ""})
	seed(&Fcall{Type: Twalk, Tag: 2, Fid: 3, Name: "helix"})
	seed(&Fcall{Type: Twrite, Tag: 3, Fid: 4, Offset: 1 << 20, Count: 5, Data: []byte("hello")})
	seed(&Fcall{Type: Rerror, Tag: 4, Ename: "phase error"})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, p []byte) {
		fc, err := UnmarshalFcall(p)
		if err != nil {
			return
		}
		q, err := MarshalFcall(fc)
		if err != nil {
			t.Fatalf("accepted message does not marshal: %s: %v", fc, err)
		}
		fc2, err := UnmarshalFcall(q)
		if err != nil {
			t.Fatalf("re-marshaled message rejected: %s: %v", fc, err)
		}
		if !reflect.DeepEqual(fc, fc2) {
			t.Fatalf("round trip changed the message:\n%+v\n%+v", fc, fc2)
		}
	})
}
