// Package ether simulates an Ethernet (§2.2): a broadcast segment
// connecting interfaces, each served by a LANCE-style driver that
// demultiplexes received packets among conversations by packet type,
// supports the special type -1 and promiscuous mode, and presents the
// two-level file tree of the paper's Figure 1:
//
//	ether/clone
//	ether/1/ctl  ether/1/data  ether/1/stats  ether/1/type
//	...
//
// The medium is characterized by a Profile (latency, bandwidth, MTU,
// loss) so the performance experiments can calibrate it to the paper's
// 10 Mb/s hardware; with a zero Profile frames are delivered
// synchronously and tests run at memory speed.
package ether

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/medium"
	"repro/internal/streams"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// HdrLen is the Ethernet frame header: dst[6] src[6] type[2].
const HdrLen = 14

// fcsLen is the frame check sequence the transmitting hardware
// appends: a CRC32, as on the real wire. Receiving interfaces verify
// and strip it, dropping damaged frames and counting crc errs —
// which is why bit corruption on an Ethernet shows up to protocols as
// loss, and end-to-end checksums (IL, TCP) exist for corruption
// introduced above the hardware CRC.
const fcsLen = 4

// MaxConns bounds the conversations per interface, like the fixed
// conversation tables of the kernel driver.
const MaxConns = 32

// Well-known packet types.
const (
	TypeIP  = 0x0800
	TypeARP = 0x0806
	// TypeAll is the special packet type -1 selecting all packets.
	TypeAll = -1
)

// Addr is a 48-bit Ethernet address.
type Addr [6]byte

// String formats the address as the ndb ether= attribute does.
func (a Addr) String() string {
	return fmt.Sprintf("%02x%02x%02x%02x%02x%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Profile characterizes a medium for the simulator.
type Profile struct {
	// Latency is the propagation delay applied to every frame.
	Latency time.Duration
	// Bandwidth in bytes per second paces transmission; 0 means
	// unlimited (no pacing sleeps at all).
	Bandwidth int64
	// MTU is the largest payload (not counting the header); 0 means
	// 1500.
	MTU int
	// Loss is the probability in [0,1) that a frame is dropped.
	Loss float64
	// Seed seeds the impairment generator for reproducibility.
	Seed int64
	// Impair extends Loss into the full fault model (duplication,
	// reordering, corruption, jitter, bursty loss, partitions), all
	// replayable from Seed. See medium.Impairment. Corrupted frames
	// fail the FCS at every receiving interface, so corruption
	// surfaces as loss plus a crc errs count — as on real hardware.
	Impair medium.Impairment
	// Clock schedules pacing, propagation, and jitter; nil means the
	// real clock. A vclock.Virtual turns the segment into a
	// discrete-event component.
	Clock vclock.Clock
}

func (p Profile) mtu() int {
	if p.MTU <= 0 {
		return 1500
	}
	return p.MTU
}

// Segment is a broadcast domain: every frame transmitted by one
// interface is delivered to all others (medium effects permitting).
type Segment struct {
	name    string
	profile Profile
	ck      vclock.Clock
	im      *medium.Impairer // nil on an unimpaired, lossless segment
	ideal   bool             // ideal medium: no pacing, no impairment, FCS elided

	mu     sync.Mutex
	ifaces []*Interface
	closed bool

	txq *vclock.Mailbox[txFrame]
}

type txFrame struct {
	from  *Interface
	frame []byte
}

// NewSegment creates a segment with the given medium profile.
func NewSegment(name string, p Profile) *Segment {
	ck := vclock.Or(p.Clock)
	seg := &Segment{
		name:    name,
		profile: p,
		ck:      ck,
		txq:     vclock.NewMailbox[txFrame](ck, 256),
	}
	if p.Impair.Armed(p.Loss) {
		seg.im = medium.NewImpairer(p.Seed+1, p.Loss, p.Impair)
	}
	// On an ideal medium a frame cannot be damaged in transit, so the
	// simulation elides the FCS entirely: the transmitter appends none
	// and the receivers skip the check. Both sides consult this one
	// flag, fixed for the segment's lifetime, so they always agree on
	// the frame layout.
	seg.ideal = p.Bandwidth == 0 && p.Latency == 0 && seg.im == nil
	ck.Go(seg.transmitter)
	return seg
}

// Clock returns the clock the segment waits on.
func (seg *Segment) Clock() vclock.Clock { return seg.ck }

// Schedule returns the segment's recorded impairment decisions
// (requires Profile.Impair.Record); nil when unimpaired.
func (seg *Segment) Schedule() []medium.Decision {
	if seg.im == nil {
		return nil
	}
	return seg.im.Schedule()
}

// ImpairCounts returns the segment's impairment counters; zero when
// unimpaired.
func (seg *Segment) ImpairCounts() medium.Counts {
	if seg.im == nil {
		return medium.Counts{}
	}
	return seg.im.Counts()
}

// Name returns the segment's name.
func (seg *Segment) Name() string { return seg.name }

// MTU returns the medium MTU.
func (seg *Segment) MTU() int { return seg.profile.mtu() }

// Close shuts the medium down; interfaces stop receiving.
func (seg *Segment) Close() {
	seg.mu.Lock()
	if seg.closed {
		seg.mu.Unlock()
		return
	}
	seg.closed = true
	ifaces := seg.ifaces
	seg.mu.Unlock()
	seg.txq.Close()
	for _, ifc := range ifaces {
		ifc.close()
	}
}

// transmitter models the shared wire: one frame at a time, paced by
// bandwidth, then fanned out after the propagation latency. All
// waiting goes through the segment's clock, so a virtual clock replays
// the identical wire schedule.
func (seg *Segment) transmitter() {
	type timedFrame struct {
		tx txFrame
		at time.Time
	}
	sched := vclock.NewMailbox[timedFrame](seg.ck, 512)
	// The deliverer applies propagation latency in order, pipelined
	// behind the serializing transmitter.
	seg.ck.Go(func() {
		for {
			tf, ok := sched.Recv()
			if !ok {
				return
			}
			seg.ck.SleepUntil(tf.at)
			seg.mu.Lock()
			ifaces := append([]*Interface(nil), seg.ifaces...)
			seg.mu.Unlock()
			for _, ifc := range ifaces {
				if ifc != tf.tx.from {
					// Each receiver gets its own wrapper over the
					// shared (read-only) detached frame.
					ifc.deliver(block.FromBytes(tf.tx.frame))
				}
			}
		}
	})
	defer sched.Close()
	var lineFree time.Time
	for {
		tx, ok := seg.txq.Recv()
		if !ok {
			return
		}
		p := seg.profile
		now := seg.ck.Now()
		if p.Bandwidth > 0 {
			d := time.Duration(int64(len(tx.frame)) * int64(time.Second) / p.Bandwidth)
			if lineFree.Before(now) {
				lineFree = now
			}
			lineFree = lineFree.Add(d)
			seg.ck.SleepUntil(lineFree)
		}
		if seg.im != nil {
			// The impairer decides drop/duplicate/corrupt/hold
			// for this wire position; each resulting copy is
			// scheduled at latency plus its jitter. The single
			// transmitter goroutine defines wire-position order,
			// so a fixed seed replays the identical schedule.
			for _, e := range seg.im.Apply(tx.frame) {
				if sched.Send(timedFrame{tx: txFrame{from: tx.from, frame: e.Data}, at: seg.ck.Now().Add(p.Latency + e.Delay)}) != nil {
					return
				}
			}
			continue
		}
		if sched.Send(timedFrame{tx: tx, at: seg.ck.Now().Add(p.Latency)}) != nil {
			return
		}
	}
}

// transmitBlock queues a frame on the wire, appending the hardware FCS
// into the block's tailroom in place (elided on an ideal medium).
// Ownership of b transfers to the segment.
func (seg *Segment) transmitBlock(from *Interface, b *block.Block) error {
	if b.Len()-HdrLen > seg.profile.mtu() {
		n := b.Len() - HdrLen
		b.Free()
		return fmt.Errorf("ether: packet exceeds MTU (%d > %d)", n, seg.profile.mtu())
	}
	if seg.ideal {
		// Synchronous fast path for an ideal medium: no pacing, no
		// reordering possible, no FCS (nothing can damage the frame).
		// The one block fans out to every receiver by reference
		// count — each interface reads it and releases its own
		// reference; nobody copies, nobody mutates.
		seg.mu.Lock()
		if seg.closed {
			seg.mu.Unlock()
			b.Free()
			return vfs.ErrShutdown
		}
		ifaces := append([]*Interface(nil), seg.ifaces...)
		seg.mu.Unlock()
		n := 0
		for _, ifc := range ifaces {
			if ifc != from {
				n++
			}
		}
		if n == 0 {
			b.Free()
			return nil
		}
		for i := 1; i < n; i++ {
			b.Ref()
		}
		for _, ifc := range ifaces {
			if ifc != from {
				ifc.deliver(b)
			}
		}
		return nil
	}
	// Paced or impaired medium: the FCS goes on the wire so damage is
	// detectable, and the frame leaves the block economy here. The
	// impairer must copy to corrupt (and to duplicate), and the
	// latency scheduler fans the same bytes out to every station, so a
	// detached plain slice is the honest representation.
	crc := crc32.ChecksumIEEE(b.Bytes())
	binary.BigEndian.PutUint32(b.Extend(fcsLen), crc)
	frame := b.Detach()
	if seg.txq.Send(txFrame{from: from, frame: frame}) != nil {
		return vfs.ErrShutdown
	}
	return nil
}

var macCounter atomic.Uint32

// Interface is one station on a segment: the LANCE analogue. Received
// frames are demultiplexed among conversations by packet type; every
// matching conversation receives a copy.
type Interface struct {
	seg  *Segment
	addr Addr
	name string

	mu     sync.Mutex
	conns  [MaxConns + 1]*Conn     // index 1..MaxConns, as in the file tree
	active atomic.Pointer[[]*Conn] // snapshot of allocated conns, for the lock-free demux

	in *vclock.Mailbox[*block.Block]

	inPackets  atomic.Int64
	outPackets atomic.Int64
	inBytes    atomic.Int64
	outBytes   atomic.Int64
	overflows  atomic.Int64
	crcErrs    atomic.Int64 // frames that failed the FCS check
}

// CRCErrs reports how many damaged frames the interface discarded.
func (ifc *Interface) CRCErrs() int64 { return ifc.crcErrs.Load() }

// NewInterface attaches a new station to the segment. name is the
// device name it will carry in a file tree ("ether0").
func (seg *Segment) NewInterface(name string) *Interface {
	n := macCounter.Add(1)
	ifc := &Interface{
		seg:  seg,
		name: name,
		addr: Addr{0x08, 0x00, 0x69, byte(n >> 16), byte(n >> 8), byte(n)},
		in:   vclock.NewMailbox[*block.Block](seg.ck, 512),
	}
	seg.ck.Go(ifc.reader)
	seg.mu.Lock()
	seg.ifaces = append(seg.ifaces, ifc)
	seg.mu.Unlock()
	return ifc
}

// Addr returns the interface's Ethernet address.
func (ifc *Interface) Addr() Addr { return ifc.addr }

// Name returns the interface name.
func (ifc *Interface) Name() string { return ifc.name }

// Segment returns the medium the interface is attached to.
func (ifc *Interface) Segment() *Segment { return ifc.seg }

// MTU returns the medium MTU.
func (ifc *Interface) MTU() int { return ifc.seg.MTU() }

func (ifc *Interface) close() {
	// Undelivered frames go back to the block pool rather than to a
	// reader that has already quit.
	for _, b := range ifc.in.CloseDrain() {
		b.Free()
	}
}

// deliver is called by the medium with a received frame (the interrupt
// routine analogue): it may not block, so a full input ring drops the
// frame and counts an overflow. The interface takes ownership of (its
// reference to) the block.
func (ifc *Interface) deliver(b *block.Block) {
	if !ifc.in.TrySend(b) {
		ifc.overflows.Add(1)
		b.Free()
	}
}

// reader is the kernel process that drains the input ring and
// demultiplexes to conversations (§2.4.2: "the interrupt routine wakes
// up the kernel process...").
func (ifc *Interface) reader() {
	for {
		b, ok := ifc.in.Recv()
		if !ok {
			return
		}
		// Verify and strip the FCS: a frame damaged on the wire
		// never reaches the protocols — the hardware drops it and
		// counts a crc error, and recovery is the transport's
		// problem (loss, not corruption). The block may be shared
		// with other stations (broadcast fan-out), so it is read,
		// never written, and this reference is released when
		// demultiplexing returns.
		frame := b.Bytes()
		body := frame
		if ifc.seg.ideal {
			// An ideal medium carries no FCS (nothing to check).
			if len(frame) < HdrLen {
				ifc.crcErrs.Add(1)
				b.Free()
				continue
			}
		} else {
			if len(frame) < HdrLen+fcsLen {
				ifc.crcErrs.Add(1)
				b.Free()
				continue
			}
			body = frame[:len(frame)-fcsLen]
			if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(frame[len(frame)-fcsLen:]) {
				ifc.crcErrs.Add(1)
				b.Free()
				continue
			}
		}
		ifc.inPackets.Add(1)
		ifc.inBytes.Add(int64(len(body)))
		ifc.demux(body)
		b.Free()
	}
}

// demux delivers a copy of the frame to every matching conversation:
// "if several connections on an interface are configured for a
// particular packet type, each receives a copy of the incoming
// packets" (§2.2).
func (ifc *Interface) demux(frame []byte) {
	var dst Addr
	copy(dst[:], frame[0:6])
	etype := int(frame[12])<<8 | int(frame[13])
	toMe := dst == ifc.addr || dst == Broadcast
	conns := ifc.active.Load()
	if conns == nil {
		return
	}
	for _, c := range *conns {
		// One atomic load per conversation per frame: the match state
		// is a read-mostly snapshot rebuilt on the rare configuration
		// changes, so the per-frame demultiplex loop takes no locks.
		st := c.rx.Load()
		if st == nil || !st.inuse {
			continue
		}
		match := st.prom ||
			(toMe && (st.etype == TypeAll || st.etype == etype))
		deliver := st.deliver
		s := st.stream
		if !match {
			continue
		}
		if deliver != nil {
			// Kernel hooks borrow the frame for the duration of the
			// call; the IP stack slices it in place and copies only
			// what it retains.
			c.inPackets.Add(1)
			deliver(frame)
			continue
		}
		if s == nil {
			continue
		}
		// A conversation nobody reads must not wedge the interface:
		// the driver drops, like real input-ring overflow. The
		// threshold sits below the stream's own flow-control limit
		// so the demultiplexer can never block on one slow reader.
		if s.QueuedBytes() >= streams.DefaultLimit/2 {
			ifc.overflows.Add(1)
			continue
		}
		// Stream conversations get their own copy — "each receives a
		// copy of the incoming packets" — into a pooled block.
		c.inPackets.Add(1)
		s.DeviceUpOwned(block.Copy(frame, 0))
	}
}

// Conn is a conversation on the interface: one numbered connection
// directory of Figure 1.
type Conn struct {
	ifc *Interface
	id  int

	mu      sync.Mutex
	inuse   int // reference count of open files on the conversation
	etype   int // 0 = unconfigured, -1 = all
	prom    bool
	stream  *streams.Stream
	deliver func(frame []byte) // kernel hook bypassing the stream

	// rx is the demultiplexer's view of the fields above: an immutable
	// snapshot republished under mu whenever they change, so the
	// per-frame receive path reads one atomic pointer instead of taking
	// the conversation lock. Configuration changes are rare; frames are
	// not.
	rx atomic.Pointer[rxState]

	inPackets  atomic.Int64
	outPackets atomic.Int64
}

// rxState is a Conn's frozen match state as the demultiplexer sees it.
type rxState struct {
	inuse   bool
	prom    bool
	etype   int
	stream  *streams.Stream
	deliver func(frame []byte)
}

// refreshRx republishes the demux snapshot. Callers hold c.mu.
func (c *Conn) refreshRx() {
	c.rx.Store(&rxState{
		inuse:   c.inuse > 0,
		prom:    c.prom,
		etype:   c.etype,
		stream:  c.stream,
		deliver: c.deliver,
	})
}

// OpenConn reserves a conversation programmatically (the kernel path
// used by the IP stack, equivalent to opening the clone file).
func (ifc *Interface) OpenConn() (*Conn, error) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	for id := 1; id <= MaxConns; id++ {
		c := ifc.conns[id]
		if c == nil {
			c = &Conn{ifc: ifc, id: id}
			ifc.conns[id] = c
			// Republish the demux's conversation list. Conn slots are
			// allocated once and reused forever after, so the list only
			// grows, and growing it is the only time it changes.
			var lst []*Conn
			for _, cc := range ifc.conns[1:] {
				if cc != nil {
					lst = append(lst, cc)
				}
			}
			ifc.active.Store(&lst)
		}
		//netvet:ignore lock-across-send fixed hierarchy: interface before conversation, never reversed
		c.mu.Lock()
		free := c.inuse == 0
		if free {
			c.inuse = 1
			c.etype = 0
			c.prom = false
			c.deliver = nil
			c.stream = c.newStreamLocked()
			c.refreshRx()
		}
		c.mu.Unlock()
		if free {
			return c, nil
		}
	}
	return nil, vfs.ErrInUse
}

// newStreamLocked builds the conversation's stream; the device end
// transmits frames.
func (c *Conn) newStreamLocked() *streams.Stream {
	return streams.New(0, func(b *streams.Block) {
		if b.Type != streams.BlockData {
			b.Free()
			return
		}
		c.transmit(b)
	})
}

// ID returns the conversation number.
func (c *Conn) ID() int { return c.id }

// SetType configures the packet type ("connect N" on the ctl file).
func (c *Conn) SetType(etype int) {
	c.mu.Lock()
	c.etype = etype
	c.refreshRx()
	c.mu.Unlock()
}

// Type returns the configured packet type.
func (c *Conn) Type() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.etype
}

// SetPromiscuous turns promiscuous reception on ("promiscuous").
func (c *Conn) SetPromiscuous(on bool) {
	c.mu.Lock()
	c.prom = on
	c.refreshRx()
	c.mu.Unlock()
}

// SetDeliver installs a kernel delivery hook: received frames go to fn
// instead of the conversation stream. The IP stack uses this to avoid
// a queue it would immediately drain. The frame is borrowed — it
// aliases a receive buffer recycled after fn returns — so the hook
// must copy anything it keeps.
func (c *Conn) SetDeliver(fn func(frame []byte)) {
	c.mu.Lock()
	c.deliver = fn
	c.refreshRx()
	c.mu.Unlock()
}

// Transmit sends payload p to dst with the conversation's packet type,
// "appending a packet header containing the source address and packet
// type" (§2.2). The payload is borrowed and copied into a pooled
// frame; callers that already own a block use TransmitBlock.
func (c *Conn) Transmit(dst Addr, payload []byte) error {
	return c.TransmitBlock(dst, block.Copy(payload, HdrLen))
}

// TransmitBlock sends an owned payload block, pushing the frame header
// into its headroom in place. Ownership transfers to the driver.
func (c *Conn) TransmitBlock(dst Addr, payload *block.Block) error {
	hdr := payload.Prepend(HdrLen)
	copy(hdr[0:6], dst[:])
	copy(hdr[6:12], c.ifc.addr[:])
	etype := 0
	if st := c.rx.Load(); st != nil {
		etype = st.etype
	}
	hdr[12] = byte(etype >> 8)
	hdr[13] = byte(etype)
	c.outPackets.Add(1)
	c.ifc.outPackets.Add(1)
	c.ifc.outBytes.Add(int64(payload.Len()))
	return c.ifc.seg.transmitBlock(c.ifc, payload)
}

// transmit handles a raw write from the data file: the first 6 bytes
// are the destination address, the rest the payload. It consumes the
// stream block, carrying its buffer through to the wire.
func (c *Conn) transmit(w *streams.Block) {
	if len(w.Buf) < 6 {
		w.Free()
		return
	}
	var dst Addr
	copy(dst[:], w.Buf[:6])
	payload := w.TakeInner()
	payload.Consume(6)
	c.TransmitBlock(dst, payload)
}

// Read returns the next received frame (header included), via the
// conversation stream. Used by the file tree's data file.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	s := c.stream
	c.mu.Unlock()
	if s == nil {
		return 0, vfs.ErrHungup
	}
	return s.Read(p)
}

// Stream exposes the conversation stream (for pushing modules).
func (c *Conn) Stream() *streams.Stream {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stream
}

// incref takes another reference on the conversation.
func (c *Conn) incref() {
	c.mu.Lock()
	c.inuse++
	c.refreshRx()
	c.mu.Unlock()
}

// Close drops one reference; on the last, the conversation resets, as
// when the final file in the connection directory is clunked.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.inuse--
	if c.inuse > 0 {
		c.mu.Unlock()
		return nil
	}
	c.inuse = 0
	s := c.stream
	c.stream = nil
	c.etype = 0
	c.prom = false
	c.deliver = nil
	c.refreshRx()
	c.mu.Unlock()
	if s != nil {
		s.Close()
	}
	return nil
}

// Stats formats interface statistics in the ASCII style of the stats
// file (§2.2: "interface address, packet input/output counts, error
// statistics, and general information about the state of the
// interface"). The counter lines use the "name: value" shape that
// obs.ParseStats reads back, so the conformance suite can reconcile
// them against the impairment model's ground truth.
func (ifc *Interface) Stats() string {
	return fmt.Sprintf(
		"addr: %s\nmtu: %d\nin: %d\nout: %d\nin-bytes: %d\nout-bytes: %d\noverflows: %d\ncrc-errs: %d\n",
		ifc.addr, ifc.MTU(),
		ifc.inPackets.Load(), ifc.outPackets.Load(),
		ifc.inBytes.Load(), ifc.outBytes.Load(),
		ifc.overflows.Load(), ifc.crcErrs.Load())
}
