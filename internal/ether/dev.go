package ether

import (
	"fmt"
	"strconv"

	"repro/internal/devtree"
	"repro/internal/vfs"
)

// Dev presents an Interface as the kernel file tree of Figure 1:
//
//	clone
//	1/ctl 1/data 1/stats 1/type
//	...
//
// Opening clone finds an unused connection and opens its ctl file;
// reading that file descriptor returns the ASCII connection number.
// Writing "connect 2048" to ctl sets the packet type; "connect -1"
// selects all packets; "promiscuous" turns on promiscuous mode.
type Dev struct {
	ifc   *Interface
	owner string
}

var _ vfs.Device = (*Dev)(nil)

// NewDev wraps an interface in its device file tree.
func NewDev(ifc *Interface, owner string) *Dev {
	return &Dev{ifc: ifc, owner: owner}
}

// Name implements vfs.Device.
func (d *Dev) Name() string { return d.ifc.name }

// Attach implements vfs.Device.
func (d *Dev) Attach(spec string) (vfs.Node, error) {
	if spec != "" {
		return nil, vfs.ErrBadSpec
	}
	return d.Root(), nil
}

// Root returns the top directory of the tree.
func (d *Dev) Root() vfs.Node {
	root := &devtree.DirNode{Entry: devtree.MkDir(d.ifc.name, d.owner, 0555)}
	root.List = func() ([]vfs.Dir, error) {
		ents := []vfs.Dir{devtree.MkFile("clone", d.owner, 0666)}
		d.ifc.mu.Lock()
		defer d.ifc.mu.Unlock()
		for id := 1; id <= MaxConns; id++ {
			if c := d.ifc.conns[id]; c != nil {
				//netvet:ignore lock-across-send fixed hierarchy: interface before conversation, never reversed
				c.mu.Lock()
				live := c.inuse > 0
				c.mu.Unlock()
				if live {
					ents = append(ents, devtree.MkDir(strconv.Itoa(id), d.owner, 0555))
				}
			}
		}
		return ents, nil
	}
	root.Lookup = func(name string) (vfs.Node, error) {
		if name == "clone" {
			return d.cloneNode(), nil
		}
		id, err := strconv.Atoi(name)
		if err != nil || id < 1 || id > MaxConns {
			return nil, vfs.ErrNotExist
		}
		d.ifc.mu.Lock()
		c := d.ifc.conns[id]
		d.ifc.mu.Unlock()
		if c == nil {
			return nil, vfs.ErrNotExist
		}
		c.mu.Lock()
		live := c.inuse > 0
		c.mu.Unlock()
		if !live {
			return nil, vfs.ErrNotExist
		}
		return d.connDir(c), nil
	}
	return root
}

// cloneNode is the clone file: opening it reserves a conversation and
// behaves as that conversation's ctl file.
func (d *Dev) cloneNode() vfs.Node {
	return &devtree.FileNode{
		Entry: devtree.MkFile("clone", d.owner, 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			c, err := d.ifc.OpenConn()
			if err != nil {
				return nil, err
			}
			return d.ctlHandle(c), nil
		},
	}
}

func (d *Dev) ctlHandle(c *Conn) vfs.Handle {
	return &devtree.CtlHandle{
		Get:   func() (string, error) { return strconv.Itoa(c.id), nil },
		Cmd:   func(cmd string) error { return d.connCtl(c, cmd) },
		OnEnd: func() { c.Close() },
	}
}

// connCtl parses the ASCII control commands of §2.2.
func (d *Dev) connCtl(c *Conn, cmd string) error {
	f := devtree.ParseCmd(cmd)
	if len(f) == 0 {
		return vfs.ErrBadCtl
	}
	switch f[0] {
	case "connect":
		if len(f) != 2 {
			return vfs.ErrBadCtl
		}
		t, err := strconv.Atoi(f[1])
		if err != nil || t < -1 || t > 0xffff {
			return vfs.ErrBadCtl
		}
		c.SetType(t)
		return nil
	case "promiscuous":
		c.SetPromiscuous(true)
		return nil
	default:
		return vfs.ErrBadCtl
	}
}

// connDir serves one numbered connection directory.
func (d *Dev) connDir(c *Conn) vfs.Node {
	name := strconv.Itoa(c.id)
	mk := func(n string, perm uint32) vfs.Dir { return devtree.MkFile(n, d.owner, perm) }
	ctl := &devtree.FileNode{
		Entry: mk("ctl", 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			c.incref()
			return d.ctlHandle(c), nil
		},
	}
	data := &devtree.FileNode{
		Entry: mk("data", 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			c.incref()
			return &dataHandle{c: c}, nil
		},
	}
	stats := devtree.TextFile(mk("stats", 0444), func() (string, error) {
		return d.ifc.Stats() + fmt.Sprintf("conn %d: type %d in %d out %d\n",
			c.id, c.Type(), c.inPackets.Load(), c.outPackets.Load()), nil
	})
	typ := devtree.TextFile(mk("type", 0444), func() (string, error) {
		return strconv.Itoa(c.Type()), nil
	})
	return devtree.StaticDir(devtree.MkDir(name, d.owner, 0555),
		map[string]vfs.Node{"ctl": ctl, "data": data, "stats": stats, "type": typ},
		[]string{"ctl", "data", "stats", "type"})
}

// dataHandle accesses the media: reading returns the next packet of
// the selected type, writing queues a packet for transmission.
type dataHandle struct{ c *Conn }

var _ vfs.Handle = (*dataHandle)(nil)

// Read implements vfs.Handle; the offset is ignored (stream semantics).
func (h *dataHandle) Read(p []byte, off int64) (int, error) {
	return h.c.Read(p)
}

// Write implements vfs.Handle.
func (h *dataHandle) Write(p []byte, off int64) (int, error) {
	if len(p) < 6 {
		return len(p), nil
	}
	var dst Addr
	copy(dst[:], p[:6])
	h.c.Transmit(dst, p[6:])
	return len(p), nil
}

// Close implements vfs.Handle.
func (h *dataHandle) Close() error { return h.c.Close() }
