package ether

import (
	"strings"
	"testing"
	"time"

	"repro/internal/medium"
	"repro/internal/ns"
	"repro/internal/ramfs"
	"repro/internal/vfs"
)

func newSeg(t *testing.T, p Profile) *Segment {
	t.Helper()
	seg := NewSegment("ether0", p)
	t.Cleanup(seg.Close)
	return seg
}

func TestAddrString(t *testing.T) {
	a := Addr{0x08, 0x00, 0x69, 0x02, 0x22, 0xf0}
	if a.String() != "0800690222f0" {
		t.Errorf("Addr.String = %q", a)
	}
}

func TestUnicastDelivery(t *testing.T) {
	seg := newSeg(t, Profile{})
	i1 := seg.NewInterface("ether0")
	i2 := seg.NewInterface("ether0")
	c1, _ := i1.OpenConn()
	c2, _ := i2.OpenConn()
	c1.SetType(0x800)
	c2.SetType(0x800)
	defer c1.Close()
	defer c2.Close()

	if err := c1.Transmit(i2.Addr(), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	n := mustRead(t, c2, buf)
	if n < HdrLen || string(buf[HdrLen:n]) != "payload" {
		t.Fatalf("received %q", buf[:n])
	}
	// Header carries dst, src, type.
	var dst, src Addr
	copy(dst[:], buf[0:6])
	copy(src[:], buf[6:12])
	if dst != i2.Addr() || src != i1.Addr() {
		t.Errorf("header dst=%s src=%s", dst, src)
	}
	if et := int(buf[12])<<8 | int(buf[13]); et != 0x800 {
		t.Errorf("header type %#x", et)
	}
}

func mustRead(t *testing.T, c *Conn, buf []byte) int {
	t.Helper()
	type res struct {
		n   int
		err error
	}
	ch := make(chan res, 1)
	go func() {
		n, err := c.Read(buf)
		ch <- res{n, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.n
	case <-time.After(2 * time.Second):
		t.Fatal("read timed out")
		return 0
	}
}

func TestTypeFiltering(t *testing.T) {
	seg := newSeg(t, Profile{})
	i1 := seg.NewInterface("e")
	i2 := seg.NewInterface("e")
	cIP, _ := i2.OpenConn()
	cIP.SetType(0x800)
	cARP, _ := i2.OpenConn()
	cARP.SetType(0x806)
	defer cIP.Close()
	defer cARP.Close()

	tx, _ := i1.OpenConn()
	defer tx.Close()
	tx.SetType(0x806)
	tx.Transmit(i2.Addr(), []byte("arp"))
	buf := make([]byte, 256)
	n := mustRead(t, cARP, buf)
	if string(buf[HdrLen:n]) != "arp" {
		t.Fatalf("arp conn got %q", buf[HdrLen:n])
	}
	// The IP conversation must not have received it.
	if got := cIP.Stream().QueuedBytes(); got != 0 {
		t.Errorf("ip conn queued %d bytes of arp traffic", got)
	}
}

func TestCopyToAllMatchingConversations(t *testing.T) {
	seg := newSeg(t, Profile{})
	i1 := seg.NewInterface("e")
	i2 := seg.NewInterface("e")
	a, _ := i2.OpenConn()
	b, _ := i2.OpenConn()
	a.SetType(0x800)
	b.SetType(0x800)
	defer a.Close()
	defer b.Close()
	tx, _ := i1.OpenConn()
	defer tx.Close()
	tx.SetType(0x800)
	tx.Transmit(i2.Addr(), []byte("dup"))
	buf := make([]byte, 256)
	if n := mustRead(t, a, buf); string(buf[HdrLen:n]) != "dup" {
		t.Error("first conversation missed its copy")
	}
	if n := mustRead(t, b, buf); string(buf[HdrLen:n]) != "dup" {
		t.Error("second conversation missed its copy")
	}
}

func TestTypeAllAndPromiscuous(t *testing.T) {
	seg := newSeg(t, Profile{})
	i1 := seg.NewInterface("e")
	i2 := seg.NewInterface("e")
	i3 := seg.NewInterface("e") // the snooper
	all, _ := i3.OpenConn()
	all.SetType(TypeAll)
	all.SetPromiscuous(true)
	defer all.Close()

	tx, _ := i1.OpenConn()
	defer tx.Close()
	tx.SetType(0x1234)
	tx.Transmit(i2.Addr(), []byte("sniffed")) // not addressed to i3
	buf := make([]byte, 256)
	n := mustRead(t, all, buf)
	if string(buf[HdrLen:n]) != "sniffed" {
		t.Errorf("promiscuous conversation got %q", buf[HdrLen:n])
	}
	// Type -1 without promiscuous sees only frames addressed to us.
	only, _ := i3.OpenConn()
	only.SetType(TypeAll)
	defer only.Close()
	tx.Transmit(i2.Addr(), []byte("not-для-нас"))
	time.Sleep(10 * time.Millisecond)
	if only.Stream().QueuedBytes() != 0 {
		t.Error("type -1 conversation received a frame addressed elsewhere")
	}
	tx.Transmit(Broadcast, []byte("bcast"))
	n = mustRead(t, only, buf)
	if string(buf[HdrLen:n]) != "bcast" {
		t.Errorf("broadcast not seen by type -1: %q", buf[HdrLen:n])
	}
}

func TestMTUEnforced(t *testing.T) {
	seg := newSeg(t, Profile{MTU: 64})
	i1 := seg.NewInterface("e")
	c, _ := i1.OpenConn()
	defer c.Close()
	c.SetType(1)
	if err := c.Transmit(Broadcast, make([]byte, 65)); err == nil {
		t.Error("over-MTU transmit accepted")
	}
	if err := c.Transmit(Broadcast, make([]byte, 64)); err != nil {
		t.Errorf("at-MTU transmit rejected: %v", err)
	}
}

func TestLossProfileDropsFrames(t *testing.T) {
	seg := newSeg(t, Profile{Loss: 1.0, Seed: 42, Bandwidth: 1 << 30})
	i1 := seg.NewInterface("e")
	i2 := seg.NewInterface("e")
	rx, _ := i2.OpenConn()
	rx.SetType(1)
	defer rx.Close()
	tx, _ := i1.OpenConn()
	tx.SetType(1)
	defer tx.Close()
	for range 10 {
		tx.Transmit(i2.Addr(), []byte("gone"))
	}
	time.Sleep(30 * time.Millisecond)
	if rx.Stream().QueuedBytes() != 0 {
		t.Error("frames survived a loss=1.0 medium")
	}
}

func TestLatencyProfileDelays(t *testing.T) {
	seg := newSeg(t, Profile{Latency: 30 * time.Millisecond, Bandwidth: 1 << 30})
	i1 := seg.NewInterface("e")
	i2 := seg.NewInterface("e")
	rx, _ := i2.OpenConn()
	rx.SetType(1)
	defer rx.Close()
	tx, _ := i1.OpenConn()
	tx.SetType(1)
	defer tx.Close()
	start := time.Now()
	tx.Transmit(i2.Addr(), []byte("slow"))
	buf := make([]byte, 128)
	mustRead(t, rx, buf)
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("frame arrived after %v, want >= ~30ms", el)
	}
}

func TestConnExhaustionAndReuse(t *testing.T) {
	seg := newSeg(t, Profile{})
	ifc := seg.NewInterface("e")
	var conns []*Conn
	for range MaxConns {
		c, err := ifc.OpenConn()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	if _, err := ifc.OpenConn(); !vfs.SameError(err, vfs.ErrInUse) {
		t.Errorf("conn table exhaustion error = %v", err)
	}
	conns[5].Close()
	c, err := ifc.OpenConn()
	if err != nil {
		t.Fatalf("reuse after close: %v", err)
	}
	if c.ID() != 6 {
		t.Errorf("reused conn id %d, want 6", c.ID())
	}
	for _, c := range conns {
		c.Close()
	}
}

// --- the Figure 1 file tree ---

func etherNS(t *testing.T, seg *Segment) (*ns.Namespace, *Interface) {
	t.Helper()
	ifc := seg.NewInterface("ether0")
	nsp := ns.New("bootes", ramfs.New("bootes").Root())
	dev := NewDev(ifc, "bootes")
	if err := nsp.MountDevice(dev, "", "/net/ether0", ns.MREPL); err != nil {
		t.Fatal(err)
	}
	return nsp, ifc
}

func TestFigure1FileTree(t *testing.T) {
	seg := newSeg(t, Profile{})
	nsp, _ := etherNS(t, seg)

	// Initially just the clone file.
	ents, err := nsp.ReadDir("/net/ether0")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "clone" {
		t.Fatalf("initial entries %+v", ents)
	}

	// Opening the clone file finds an unused connection and opens
	// its ctl file; reading returns the ASCII connection number.
	ctl, err := nsp.Open("/net/ether0/clone", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	buf := make([]byte, 16)
	n, err := ctl.Read(buf)
	if err != nil || string(buf[:n]) != "1" {
		t.Fatalf("clone read %q, %v", buf[:n], err)
	}

	// The connection directory appears, with the Figure 1 files.
	ents, _ = nsp.ReadDir("/net/ether0/1")
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	if strings.Join(names, " ") != "ctl data stats type" {
		t.Errorf("conn dir entries %v", names)
	}

	// connect 2048 configures the packet type; type file reflects it.
	if _, err := ctl.WriteString("connect 2048"); err != nil {
		t.Fatal(err)
	}
	b, err := nsp.ReadFile("/net/ether0/1/type")
	if err != nil || string(b) != "2048" {
		t.Errorf("type file %q, %v", b, err)
	}

	// stats reports the interface address and counters.
	b, _ = nsp.ReadFile("/net/ether0/1/stats")
	if !strings.Contains(string(b), "addr: 0800") {
		t.Errorf("stats missing address: %q", b)
	}
	// Bad ctl commands are rejected.
	if _, err := ctl.WriteString("frobnicate"); !vfs.SameError(err, vfs.ErrBadCtl) {
		t.Errorf("bad ctl = %v", err)
	}
	if _, err := ctl.WriteString("connect banana"); !vfs.SameError(err, vfs.ErrBadCtl) {
		t.Errorf("bad connect arg = %v", err)
	}
}

func TestDataFileSendReceive(t *testing.T) {
	seg := newSeg(t, Profile{})
	nsA, ifcA := etherNS(t, seg)
	nsB, ifcB := etherNS(t, seg)
	_ = ifcA

	// A: clone + connect 2048 + open data.
	ctlA, _ := nsA.Open("/net/ether0/clone", vfs.ORDWR)
	defer ctlA.Close()
	ctlA.WriteString("connect 2048")
	dataA, err := nsA.Open("/net/ether0/1/data", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer dataA.Close()

	ctlB, _ := nsB.Open("/net/ether0/clone", vfs.ORDWR)
	defer ctlB.Close()
	ctlB.WriteString("connect 2048")
	dataB, err := nsB.Open("/net/ether0/1/data", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer dataB.Close()

	// Write: first 6 bytes are the destination address.
	dstB := ifcB.Addr()
	msg := append(append([]byte{}, dstB[:]...), []byte("over the wire")...)
	if _, err := dataA.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	n, err := dataB.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[HdrLen:n]) != "over the wire" {
		t.Errorf("data file read %q", buf[HdrLen:n])
	}
}

func TestConnLifetimeTiedToOpenFiles(t *testing.T) {
	seg := newSeg(t, Profile{})
	nsp, _ := etherNS(t, seg)
	ctl, _ := nsp.Open("/net/ether0/clone", vfs.ORDWR)
	ctl.WriteString("connect 7")
	data, err := nsp.Open("/net/ether0/1/data", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	// Closing ctl alone keeps the conversation (data still open).
	ctl.Close()
	if _, err := nsp.Stat("/net/ether0/1"); err != nil {
		t.Fatalf("conn dir gone while data open: %v", err)
	}
	data.Close()
	if _, err := nsp.Stat("/net/ether0/1"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("conn dir survived last close: %v", err)
	}
}

func TestInterfaceStatsCounters(t *testing.T) {
	seg := newSeg(t, Profile{})
	i1 := seg.NewInterface("e")
	i2 := seg.NewInterface("e")
	rx, _ := i2.OpenConn()
	rx.SetType(9)
	defer rx.Close()
	tx, _ := i1.OpenConn()
	tx.SetType(9)
	defer tx.Close()
	tx.Transmit(i2.Addr(), []byte("count me"))
	buf := make([]byte, 256)
	mustRead(t, rx, buf)
	if i1.outPackets.Load() != 1 {
		t.Errorf("tx out count %d", i1.outPackets.Load())
	}
	if i2.inPackets.Load() != 1 {
		t.Errorf("rx in count %d", i2.inPackets.Load())
	}
	s := i1.Stats()
	if !strings.Contains(s, "out: 1") {
		t.Errorf("stats text %q", s)
	}
}

func TestKernelDeliverHook(t *testing.T) {
	seg := newSeg(t, Profile{})
	i1 := seg.NewInterface("e")
	i2 := seg.NewInterface("e")
	got := make(chan []byte, 1)
	rx, _ := i2.OpenConn()
	rx.SetType(0x800)
	rx.SetDeliver(func(frame []byte) { got <- frame })
	defer rx.Close()
	tx, _ := i1.OpenConn()
	tx.SetType(0x800)
	defer tx.Close()
	tx.Transmit(i2.Addr(), []byte("to-kernel"))
	select {
	case f := <-got:
		if string(f[HdrLen:]) != "to-kernel" {
			t.Errorf("hook frame %q", f[HdrLen:])
		}
	case <-time.After(time.Second):
		t.Fatal("deliver hook never called")
	}
}

func TestUnreadConversationDoesNotWedgeInterface(t *testing.T) {
	// A snooping conversation nobody reads fills its queue; the
	// driver must drop for it and keep delivering new frames to
	// conversations that do read.
	seg := newSeg(t, Profile{})
	i1 := seg.NewInterface("e")
	i2 := seg.NewInterface("e")
	dead, _ := i2.OpenConn() // never read
	dead.SetType(0x700)
	defer dead.Close()
	live, _ := i2.OpenConn()
	live.SetType(0x700)
	defer live.Close()
	tx, _ := i1.OpenConn()
	tx.SetType(0x700)
	defer tx.Close()
	payload := make([]byte, 1400)
	// Saturate the dead conversation's queue (default limit 128K).
	for range 200 {
		tx.Transmit(i2.Addr(), payload)
	}
	deadline := time.Now().Add(5 * time.Second)
	for i2.overflows.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if i2.overflows.Load() == 0 {
		t.Error("no overflow drops recorded for the unread conversation")
	}
	// Drain the live conversation's backlog below the drop threshold,
	// then prove fresh frames still flow to it.
	buf := make([]byte, 2048)
	for live.Stream().QueuedBytes() > 4096 {
		mustRead(t, live, buf)
	}
	tx.Transmit(i2.Addr(), []byte("still alive"))
	for range 600 {
		n := mustRead(t, live, buf)
		if string(buf[HdrLen:n]) == "still alive" {
			return
		}
	}
	t.Error("marker frame never reached the live conversation")
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestImpairmentDuplicatesFrames(t *testing.T) {
	seg := newSeg(t, Profile{Seed: 1, Impair: medium.Impairment{Duplicate: 1}})
	i1 := seg.NewInterface("ether0")
	i2 := seg.NewInterface("ether1")
	c1, _ := i1.OpenConn()
	c2, _ := i2.OpenConn()
	defer c1.Close()
	defer c2.Close()
	c1.SetType(0x900)
	c2.SetType(0x900)
	if err := c1.Transmit(i2.Addr(), []byte("echoed")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	for copies := range 2 {
		n := mustRead(t, c2, buf)
		if string(buf[HdrLen:n]) != "echoed" {
			t.Fatalf("copy %d: %q", copies, buf[:n])
		}
	}
	if c := seg.ImpairCounts(); c.Duplicated != 1 || c.Emitted != 2 {
		t.Errorf("counts = %v", c)
	}
}

func TestImpairmentReordersFrames(t *testing.T) {
	seg := newSeg(t, Profile{Seed: 2, Impair: medium.Impairment{Reorder: 0.5, ReorderDepth: 3}})
	i1 := seg.NewInterface("ether0")
	i2 := seg.NewInterface("ether1")
	c1, _ := i1.OpenConn()
	c2, _ := i2.OpenConn()
	defer c1.Close()
	defer c2.Close()
	c1.SetType(0x900)
	c2.SetType(0x900)
	const frames = 50
	for i := range frames {
		if err := c1.Transmit(i2.Addr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "transmitter to drain", func() bool { return seg.ImpairCounts().Sent == frames })
	counts := seg.ImpairCounts()
	if counts.Held == 0 {
		t.Fatal("reorder never held a frame")
	}
	buf := make([]byte, 256)
	var order []int
	for range counts.Emitted {
		n := mustRead(t, c2, buf)
		order = append(order, int(buf[n-1]))
	}
	misordered := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			misordered = true
		}
	}
	if !misordered {
		t.Errorf("delivery order %v never misordered", order)
	}
}

// TestCorruptFramesFailFCS checks the hardware contract: a frame
// damaged on the wire fails the interface FCS check and is counted,
// never delivered — corruption on an Ethernet reaches protocols as
// loss, exactly like the real LANCE.
func TestCorruptFramesFailFCS(t *testing.T) {
	seg := newSeg(t, Profile{Seed: 3, Impair: medium.Impairment{Corrupt: 1}})
	i1 := seg.NewInterface("ether0")
	i2 := seg.NewInterface("ether1")
	c1, _ := i1.OpenConn()
	c2, _ := i2.OpenConn()
	defer c1.Close()
	defer c2.Close()
	c1.SetType(0x900)
	c2.SetType(0x900)
	const frames = 20
	for i := range frames {
		if err := c1.Transmit(i2.Addr(), []byte{byte(i), 0xaa, 0x55}); err != nil {
			t.Fatal(err)
		}
	}
	// CRC32 detects every single-bit error, so all 20 must bounce.
	waitFor(t, "crc errors", func() bool { return i2.CRCErrs() == frames })
	if q := c2.Stream().QueuedBytes(); q != 0 {
		t.Errorf("%d bytes of corrupt frames reached the conversation", q)
	}
	if !strings.Contains(i2.Stats(), "crc-errs: 20") {
		t.Errorf("stats file does not report the crc errors:\n%s", i2.Stats())
	}
}
