// Package xport defines the uniform transport-conversation interface
// behind the paper's protocol devices (§2.3): "All protocol devices
// look identical so user programs contain no network-specific code."
// TCP, UDP, IL, URP/Datakit, and the Cyclone link all implement Proto
// and Conn; the netdev package serves any Proto as the standard
// clone/n/{ctl,data,listen,local,remote,status} file tree.
package xport

import "errors"

// Conn is one conversation of some protocol.
type Conn interface {
	// Connect dials the protocol-specific ASCII address written to
	// the ctl file, e.g. "135.104.9.31!17008" for the IP protocols.
	Connect(addr string) error
	// Announce prepares the conversation to receive calls at the
	// given local address, e.g. "*!564" or "564".
	Announce(addr string) error
	// Listen blocks until an incoming call arrives on an announced
	// conversation and returns the new conversation for the call —
	// the semantics of opening the listen file.
	Listen() (Conn, error)
	// Read returns received data; message protocols preserve write
	// delimiters, byte-stream protocols do not.
	Read(p []byte) (int, error)
	// Write queues data for transmission.
	Write(p []byte) (int, error)
	// LocalAddr and RemoteAddr return the ASCII endpoints, as the
	// local and remote files report them.
	LocalAddr() string
	RemoteAddr() string
	// Status returns the ASCII state line of the status file.
	Status() string
	// Close releases the conversation.
	Close() error
}

// Proto is a protocol device: a factory for conversations, served as a
// directory under /net.
type Proto interface {
	// Name is the device name: "tcp", "udp", "il", "dk", "cyc".
	Name() string
	// NewConn reserves a fresh conversation (the clone file).
	NewConn() (Conn, error)
}

// Errors shared by transports.
var (
	ErrBadAddress   = errors.New("bad network address")
	ErrNotAnnounced = errors.New("listen on unannounced connection")
	ErrInUse        = errors.New("address in use")
	ErrNotConnected = errors.New("not connected")
	ErrConnected    = errors.New("already connected")
)
