package xport_test

import (
	"testing"

	"repro/internal/cyclone"
	"repro/internal/datakit"
	"repro/internal/il"
	"repro/internal/tcp"
	"repro/internal/udp"
	"repro/internal/xport"
)

// Every transport in the repository satisfies the uniform interface —
// the compile-time face of "all protocol devices look identical".
var (
	_ xport.Proto = (*il.Proto)(nil)
	_ xport.Proto = (*tcp.Proto)(nil)
	_ xport.Proto = (*udp.Proto)(nil)
	_ xport.Proto = (*datakit.Proto)(nil)
	_ xport.Proto = (*cyclone.End)(nil)
)

func TestErrorMessagesDistinct(t *testing.T) {
	errs := []error{
		xport.ErrBadAddress,
		xport.ErrNotAnnounced,
		xport.ErrInUse,
		xport.ErrNotConnected,
		xport.ErrConnected,
	}
	seen := map[string]bool{}
	for _, e := range errs {
		if e.Error() == "" {
			t.Error("empty error message")
		}
		if seen[e.Error()] {
			t.Errorf("duplicate error message %q", e)
		}
		seen[e.Error()] = true
	}
}
