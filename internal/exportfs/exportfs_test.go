package exportfs

import (
	"testing"

	"repro/internal/mnt"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/ramfs"
	"repro/internal/vfs"
)

// exportedNS builds a remote machine's name space with some structure
// and serves root over a pipe; returns the local client end.
func exported(t *testing.T, remote *ns.Namespace, root string) ninep.MsgConn {
	t.Helper()
	a, b := ninep.NewPipe()
	go Serve(b, remote, root)
	t.Cleanup(func() { a.Close() })
	return a
}

func TestImportWholeTree(t *testing.T) {
	rfs := ramfs.New("helix")
	rfs.WriteFile("lib/ndb/local", []byte("sys=helix\n"), 0664)
	remote := ns.New("helix", rfs.Root())

	local := ns.New("glenda", ramfs.New("glenda").Root())
	cl, err := Import(local, exported(t, remote, "/"), "", "/n/helix", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	b, err := local.ReadFile("/n/helix/lib/ndb/local")
	if err != nil || string(b) != "sys=helix\n" {
		t.Fatalf("imported read %q, %v", b, err)
	}
}

func TestImportSubtreeViaAname(t *testing.T) {
	rfs := ramfs.New("helix")
	rfs.WriteFile("a/b/c", []byte("deep"), 0664)
	remote := ns.New("helix", rfs.Root())
	local := ns.New("glenda", ramfs.New("glenda").Root())
	cl, err := Import(local, exported(t, remote, "/a"), "b", "/mnt", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	b, err := local.ReadFile("/mnt/c")
	if err != nil || string(b) != "deep" {
		t.Fatalf("aname import read %q, %v", b, err)
	}
}

func TestExportRefusesMissingRoot(t *testing.T) {
	remote := ns.New("helix", ramfs.New("helix").Root())
	local := ns.New("glenda", ramfs.New("glenda").Root())
	_, err := Import(local, exported(t, remote, "/"), "missing", "/mnt", ns.MREPL)
	if !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("import of missing subtree = %v", err)
	}
}

func TestWritesPropagateBack(t *testing.T) {
	rfs := ramfs.New("helix")
	rfs.MkdirAll("tmp", 0775)
	remote := ns.New("helix", rfs.Root())
	local := ns.New("glenda", ramfs.New("glenda").Root())
	cl, err := Import(local, exported(t, remote, "/tmp"), "", "/r", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := local.WriteFile("/r/out", []byte("written remotely"), 0664); err != nil {
		t.Fatal(err)
	}
	b, err := rfs.ReadFile("tmp/out")
	if err != nil || string(b) != "written remotely" {
		t.Errorf("remote side saw %q, %v", b, err)
	}
	// Remove propagates too.
	if err := local.Remove("/r/out"); err != nil {
		t.Fatal(err)
	}
	if _, err := rfs.ReadFile("tmp/out"); err == nil {
		t.Error("remote file survived local remove")
	}
}

func TestExportFollowsRemoteMounts(t *testing.T) {
	// The §6.1 gateway property: the exporter's *name space* is
	// exported, so trees mounted on the remote machine are visible
	// through the import.
	rfs := ramfs.New("helix")
	rfs.MkdirAll("net", 0775)
	remote := ns.New("helix", rfs.Root())
	dev := ramfs.New("helix")
	dev.WriteFile("clone", []byte("tcp-clone"), 0666)
	remote.MountNode(dev.Root(), "/net/tcp", ns.MREPL)

	local := ns.New("glenda", ramfs.New("glenda").Root())
	cl, err := Import(local, exported(t, remote, "/net"), "", "/net", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	b, err := local.ReadFile("/net/tcp/clone")
	if err != nil || string(b) != "tcp-clone" {
		t.Errorf("remote mount not visible through export: %q, %v", b, err)
	}
}

func TestImportAfterUnionsLikeThePaper(t *testing.T) {
	// philw-gnot% import -a musca /net — the union lists both local
	// and remote entries, local first.
	lfs := ramfs.New("gnot")
	lfs.WriteFile("net/cs", []byte("local"), 0666)
	lfs.WriteFile("net/dk", []byte("local"), 0666)
	local := ns.New("gnot", lfs.Root())

	rfs := ramfs.New("musca")
	for _, name := range []string{"cs", "dk", "dns", "ether", "il", "tcp", "udp"} {
		rfs.WriteFile("net/"+name, []byte("remote"), 0666)
	}
	remote := ns.New("musca", rfs.Root())

	cl, err := Import(local, exported(t, remote, "/net"), "", "/net", ns.MAFTER)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ents, err := local.ReadDir("/net")
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, e := range ents {
		count[e.Name]++
	}
	if count["cs"] != 2 || count["dk"] != 2 {
		t.Errorf("cs/dk should list twice, got %v", count)
	}
	for _, name := range []string{"dns", "ether", "il", "tcp", "udp"} {
		if count[name] != 1 {
			t.Errorf("remote-only %s listed %d times", name, count[name])
		}
	}
	// Local supersedes remote.
	if b, _ := local.ReadFile("/net/cs"); string(b) != "local" {
		t.Errorf("/net/cs = %q, want local", b)
	}
	// Remote-only entries reachable.
	if b, _ := local.ReadFile("/net/tcp"); string(b) != "remote" {
		t.Errorf("/net/tcp = %q, want remote", b)
	}
}

func TestNestedExport(t *testing.T) {
	// A imports from B; C imports from A and sees B's files relayed
	// through two 9P hops — exportfs as a relay file server.
	bfs := ramfs.New("b")
	bfs.WriteFile("data", []byte("origin"), 0664)
	nsB := ns.New("b", bfs.Root())

	nsA := ns.New("a", ramfs.New("a").Root())
	pAB, pBA := ninep.NewPipe()
	go Serve(pBA, nsB, "/")
	clAB, err := Import(nsA, pAB, "", "/b", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer clAB.Close()

	nsC := ns.New("c", ramfs.New("c").Root())
	pCA, pAC := ninep.NewPipe()
	go Serve(pAC, nsA, "/")
	clCA, err := Import(nsC, pCA, "", "/a", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer clCA.Close()

	got, err := nsC.ReadFile("/a/b/data")
	if err != nil || string(got) != "origin" {
		t.Errorf("two-hop read %q, %v", got, err)
	}
}

func TestMountDriverDirectoryReads(t *testing.T) {
	rfs := ramfs.New("helix")
	rfs.WriteFile("d/x", nil, 0664)
	rfs.WriteFile("d/y", nil, 0664)
	rfs.WriteFile("d/z", nil, 0664)
	remote := ns.New("helix", rfs.Root())
	local := ns.New("glenda", ramfs.New("glenda").Root())
	cl, err := Import(local, exported(t, remote, "/"), "", "/r", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ents, err := local.ReadDir("/r/d")
	if err != nil || len(ents) != 3 {
		t.Fatalf("remote dir entries %v, %v", ents, err)
	}
	if ents[0].Name != "x" || ents[2].Name != "z" {
		t.Errorf("entry names %v", ents)
	}
}

func TestMountNodeDirectly(t *testing.T) {
	// mnt.Mount is usable without the Import wrapper.
	rfs := ramfs.New("srv")
	rfs.WriteFile("f", []byte("1"), 0664)
	remote := ns.New("srv", rfs.Root())
	a, b := ninep.NewPipe()
	go Serve(b, remote, "/")
	root, cl, err := mnt.Mount(a, "me", "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	n, err := root.Walk("f")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := n.Stat()
	if d.Length != 1 {
		t.Errorf("stat through mnt %+v", d)
	}
	h, err := n.Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	rn, _ := h.Read(buf, 0)
	if string(buf[:rn]) != "1" {
		t.Errorf("read through mnt %q", buf[:rn])
	}
	h.Close()
}

func TestMkdirAndRemoveThroughImport(t *testing.T) {
	rfs := ramfs.New("srv")
	rfs.MkdirAll("work", 0775)
	remote := ns.New("srv", rfs.Root())
	local := ns.New("me", ramfs.New("me").Root())
	cl, err := Import(local, exported(t, remote, "/work"), "", "/w", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fd, err := local.Create("/w/subdir", vfs.DMDIR|0775, vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	fd.Close()
	d, err := remote.Stat("/work/subdir")
	if err != nil || !d.IsDir() {
		t.Fatalf("remote mkdir: %+v, %v", d, err)
	}
	if err := local.WriteFile("/w/subdir/file", []byte("deep"), 0664); err != nil {
		t.Fatal(err)
	}
	if err := local.Remove("/w/subdir/file"); err != nil {
		t.Fatal(err)
	}
	if err := local.Remove("/w/subdir"); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Stat("/work/subdir"); err == nil {
		t.Error("remote directory survived removal")
	}
}

func TestStatWstatThroughImport(t *testing.T) {
	rfs := ramfs.New("srv")
	rfs.WriteFile("f", []byte("xyz"), 0664)
	remote := ns.New("srv", rfs.Root())
	local := ns.New("me", ramfs.New("me").Root())
	cl, err := Import(local, exported(t, remote, "/"), "", "/r", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	d, err := local.Stat("/r/f")
	if err != nil || d.Length != 3 {
		t.Fatalf("remote stat %+v, %v", d, err)
	}
	if err := local.Wstat("/r/f", vfs.Dir{Name: "g"}); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Stat("/g"); err != nil {
		t.Error("remote rename via wstat missing")
	}
}
