// Package exportfs implements the user-level relay file server of
// §6.1: it exports a piece of a process's name space across a network
// connection as 9P, and Import mounts such an export into a local name
// space. "Operations in the imported file tree are executed on the
// remote server and the results returned. As a result the name space
// of the remote machine appears to be exported into a local file tree."
//
// Serving goes through ns.PathNode, so every remote walk re-resolves in
// the exporter's mount table: importing /net from a gateway exposes
// everything mounted there, which is what makes the paper's
// Datakit-only terminal able to reach TCP through helix.
package exportfs

import (
	"repro/internal/mnt"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// Serve exports the subtree of nsp rooted at root over conn, blocking
// until the connection fails. The initial protocol that "establishes
// the root of the file tree being exported" is the 9P attach itself:
// the attach name is joined beneath root.
func Serve(conn ninep.MsgConn, nsp *ns.Namespace, root string) error {
	return ServeClock(conn, nsp, root, nil)
}

// ServeClock is Serve with an explicit clock driving the server's
// per-request goroutines; nil means the real clock.
func ServeClock(conn ninep.MsgConn, nsp *ns.Namespace, root string, ck vclock.Clock) error {
	root = ns.Clean(root)
	attach := func(uname, aname string) (vfs.Node, error) {
		p := root
		if aname != "" {
			p = ns.Clean(root + "/" + aname)
		}
		// Verify the path exists before handing out a node.
		if _, err := nsp.Walk(p); err != nil {
			return nil, err
		}
		return ns.NodeAt(nsp, p), nil
	}
	return ninep.ServeClock(conn, attach, ck)
}

// Import mounts the tree exported on conn at mountpoint old in nsp,
// with bind flags (ns.MREPL, ns.MAFTER, ...): the import command of
// §6.1. It returns the 9P client so the caller can Close it to
// unmount.
//
// Import keeps the serial mount driver's exact RPC mapping — no
// windowed fan-out, readahead, or write-behind: an import typically
// carries live device files — /net of a gateway — where speculative
// I/O is unsafe. Use ImportConfig (e.g. with mnt.FileConfig) to opt a
// plain file-tree import into pipelining.
func Import(nsp *ns.Namespace, conn ninep.MsgConn, aname, old string, flag int) (*ninep.Client, error) {
	return ImportConfig(nsp, conn, aname, old, flag, mnt.Config{})
}

// ImportConfig is Import with an explicit mount-driver configuration.
func ImportConfig(nsp *ns.Namespace, conn ninep.MsgConn, aname, old string, flag int, cfg mnt.Config) (*ninep.Client, error) {
	root, cl, err := mnt.MountConfig(conn, nsp.User(), aname, cfg)
	if err != nil {
		return nil, err
	}
	if err := nsp.MountNode(root, old, flag); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}
