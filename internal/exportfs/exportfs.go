// Package exportfs implements the user-level relay file server of
// §6.1: it exports a piece of a process's name space across a network
// connection as 9P, and Import mounts such an export into a local name
// space. "Operations in the imported file tree are executed on the
// remote server and the results returned. As a result the name space
// of the remote machine appears to be exported into a local file tree."
//
// Serving goes through ns.PathNode, so every remote walk re-resolves in
// the exporter's mount table: importing /net from a gateway exposes
// everything mounted there, which is what makes the paper's
// Datakit-only terminal able to reach TCP through helix.
package exportfs

import (
	"strings"

	"repro/internal/ccache"
	"repro/internal/mnt"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// Config sizes a multi-tenant export server; the zero value exports
// "/" on the real clock with the default worker pool, budgets, and
// cache.
type Config struct {
	// Root is the exported subtree; "" means "/". The attach name is
	// joined beneath it.
	Root string
	// Clock drives the server's goroutines; nil means real time.
	Clock vclock.Clock
	// Workers bounds the shared dispatch pool; 0 means the ninep
	// default.
	Workers int
	// ConnBudget bounds one connection's concurrently running
	// requests; 0 means the ninep default.
	ConnBudget int
	// CacheBytes bounds the shared read cache; 0 means the ccache
	// default, negative disables caching entirely.
	CacheBytes int64
}

// Server is the multi-tenant gateway of §6.1: one exported name
// space, many connections. Each connection gets private fid, tag, and
// flush state; all of them dispatch through one bounded worker pool,
// round-robin so a hot tenant cannot starve the rest; and a shared
// cfs-style block cache sits between the protocol and the backing
// tree, so a thousand imports of one file cost one fill.
type Server struct {
	nsp   *ns.Namespace
	root  string
	cache *ccache.Cache
	srv   *ninep.Server
}

// NewServer returns a server exporting nsp per cfg. Connections are
// attached with ServeConn.
func NewServer(nsp *ns.Namespace, cfg Config) *Server {
	s := &Server{nsp: nsp, root: ns.Clean(cfg.Root)}
	if cfg.CacheBytes >= 0 {
		s.cache = ccache.New(ccache.Config{
			MaxBytes: cfg.CacheBytes,
			FragSize: ninep.MaxFData,
		})
	}
	s.srv = ninep.NewServer(s.attach, ninep.ServerConfig{
		Clock:      cfg.Clock,
		Workers:    cfg.Workers,
		ConnBudget: cfg.ConnBudget,
	})
	return s
}

// attach resolves one tenant's attach: the attach name joined beneath
// the exported root, resolved through the exporter's live name space,
// with the cache interposed.
func (s *Server) attach(uname, aname string) (vfs.Node, error) {
	p := s.root
	if aname != "" {
		p = ns.Clean(s.root + "/" + aname)
	}
	// Verify the path exists before handing out a node.
	if _, err := s.nsp.Walk(p); err != nil {
		return nil, err
	}
	var node vfs.Node = ns.NodeAt(s.nsp, p)
	if s.cache != nil {
		node = s.cache.WrapNode(node)
	}
	return node, nil
}

// ServeConn serves one accepted transport, blocking until it fails.
// Many ServeConn calls run concurrently against one Server; a
// returning connection clunks only its own fids.
func (s *Server) ServeConn(conn ninep.MsgConn) error {
	return s.srv.ServeConn(conn)
}

// Cache exposes the shared read cache (nil when disabled), for stats
// and tests.
func (s *Server) Cache() *ccache.Cache { return s.cache }

// Ninep exposes the underlying 9P server, for per-connection stats.
func (s *Server) Ninep() *ninep.Server { return s.srv }

// Stats renders the gateway's stats file: the 9P server's scalar
// lines and per-connection bill, then the cache counters. Scalar
// lines parse with obs.ParseStats; the bill lines carry a space in
// the name field and are skipped, like per-conversation summaries.
func (s *Server) Stats() string {
	var b strings.Builder
	b.WriteString(s.srv.Stats())
	if s.cache != nil {
		b.WriteString(s.cache.StatsGroup().Render())
	}
	return b.String()
}

// Serve exports the subtree of nsp rooted at root over conn, blocking
// until the connection fails. The initial protocol that "establishes
// the root of the file tree being exported" is the 9P attach itself:
// the attach name is joined beneath root.
func Serve(conn ninep.MsgConn, nsp *ns.Namespace, root string) error {
	return ServeClock(conn, nsp, root, nil)
}

// ServeClock is Serve with an explicit clock driving the server's
// per-request goroutines; nil means the real clock. It is the
// single-connection form: a throwaway Server per transport, the
// pre-gateway shape callers like torture keep using.
func ServeClock(conn ninep.MsgConn, nsp *ns.Namespace, root string, ck vclock.Clock) error {
	return NewServer(nsp, Config{Root: root, Clock: ck}).ServeConn(conn)
}

// Import mounts the tree exported on conn at mountpoint old in nsp,
// with bind flags (ns.MREPL, ns.MAFTER, ...): the import command of
// §6.1. It returns the 9P client so the caller can Close it to
// unmount.
//
// Import keeps the serial mount driver's exact RPC mapping — no
// windowed fan-out, readahead, or write-behind: an import typically
// carries live device files — /net of a gateway — where speculative
// I/O is unsafe. Use ImportConfig (e.g. with mnt.FileConfig) to opt a
// plain file-tree import into pipelining.
func Import(nsp *ns.Namespace, conn ninep.MsgConn, aname, old string, flag int) (*ninep.Client, error) {
	return ImportConfig(nsp, conn, aname, old, flag, mnt.Config{})
}

// ImportConfig is Import with an explicit mount-driver configuration.
func ImportConfig(nsp *ns.Namespace, conn ninep.MsgConn, aname, old string, flag int, cfg mnt.Config) (*ninep.Client, error) {
	root, cl, err := mnt.MountConfig(conn, nsp.User(), aname, cfg)
	if err != nil {
		return nil, err
	}
	if err := nsp.MountNode(root, old, flag); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}
