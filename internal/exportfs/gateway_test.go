package exportfs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mnt"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/obs"
	"repro/internal/ramfs"
	"repro/internal/vfs"
)

// servedConn attaches a fresh pipe transport to the shared gateway
// server and returns the client end.
func servedConn(t *testing.T, srv *Server) ninep.MsgConn {
	t.Helper()
	a, b := ninep.NewPipe()
	go srv.ServeConn(b)
	t.Cleanup(func() { a.Close() })
	return a
}

// raw is a hand-cranked 9P client: it lets a test pick fids and tags
// exactly, to prove two tenants' numbering spaces never touch.
type raw struct {
	t    *testing.T
	conn ninep.MsgConn
}

func (r *raw) rpc(f *ninep.Fcall) *ninep.Fcall {
	r.t.Helper()
	msg, err := ninep.MarshalFcall(f)
	if err != nil {
		r.t.Fatalf("marshal %v: %v", f, err)
	}
	if err := r.conn.WriteMsg(msg); err != nil {
		r.t.Fatalf("write %v: %v", f, err)
	}
	m, err := r.conn.ReadMsg()
	if err != nil {
		r.t.Fatalf("read reply to %v: %v", f, err)
	}
	rf, err := ninep.UnmarshalFcall(m)
	if err != nil {
		r.t.Fatalf("unmarshal reply to %v: %v", f, err)
	}
	if rf.Type == ninep.Rerror {
		r.t.Fatalf("%v -> Rerror %q", f, rf.Ename)
	}
	if rf.Type != f.Type+1 || rf.Tag != f.Tag {
		r.t.Fatalf("%v -> %v", f, rf)
	}
	return rf
}

func gatewayServer(t *testing.T, files map[string]string) *Server {
	t.Helper()
	rfs := ramfs.New("gw")
	for name, contents := range files {
		if err := rfs.WriteFile(name, []byte(contents), 0664); err != nil {
			t.Fatal(err)
		}
	}
	return NewServer(ns.New("gw", rfs.Root()), Config{})
}

func TestCollidingFidsAndTagsAreIsolated(t *testing.T) {
	srv := gatewayServer(t, map[string]string{"a": "tenant a's file", "b": "tenant b's file"})

	// Both tenants use fid 7 and tag 3 for everything. If the server
	// shared either numbering space across connections, one tenant's
	// walk or open would clobber the other's.
	ca := &raw{t, servedConn(t, srv)}
	cb := &raw{t, servedConn(t, srv)}
	for _, c := range []struct {
		cl   *raw
		name string
		want string
	}{
		{ca, "a", "tenant a's file"},
		{cb, "b", "tenant b's file"},
	} {
		c.cl.rpc(&ninep.Fcall{Type: ninep.Tattach, Tag: 3, Fid: 7, Uname: "raw"})
		c.cl.rpc(&ninep.Fcall{Type: ninep.Twalk, Tag: 3, Fid: 7, Name: c.name})
		c.cl.rpc(&ninep.Fcall{Type: ninep.Topen, Tag: 3, Fid: 7, Mode: vfs.OREAD})
	}
	// Interleave the reads so both fids are live at once.
	ra := ca.rpc(&ninep.Fcall{Type: ninep.Tread, Tag: 3, Fid: 7, Count: 100})
	rb := cb.rpc(&ninep.Fcall{Type: ninep.Tread, Tag: 3, Fid: 7, Count: 100})
	if string(ra.Data) != "tenant a's file" {
		t.Errorf("tenant a read %q", ra.Data)
	}
	if string(rb.Data) != "tenant b's file" {
		t.Errorf("tenant b read %q", rb.Data)
	}
}

func TestTenantDeathClunksOnlyItsFids(t *testing.T) {
	srv := gatewayServer(t, map[string]string{"f": "shared file"})

	connA := servedConn(t, srv)
	ca := &raw{t, connA}
	cb := &raw{t, servedConn(t, srv)}
	for _, c := range []*raw{ca, cb} {
		c.rpc(&ninep.Fcall{Type: ninep.Tattach, Tag: 1, Fid: 1, Uname: "raw"})
		c.rpc(&ninep.Fcall{Type: ninep.Twalk, Tag: 1, Fid: 1, Name: "f"})
		c.rpc(&ninep.Fcall{Type: ninep.Topen, Tag: 1, Fid: 1, Mode: vfs.OREAD})
	}
	if n := len(srv.Ninep().ConnStats()); n != 2 {
		t.Fatalf("conns open = %d, want 2", n)
	}

	// Tenant A's transport dies mid-session.
	connA.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.Ninep().ConnStats()) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("dead connection never torn down")
		}
		time.Sleep(time.Millisecond)
	}

	// Tenant B's open fid — same number as A's — still serves.
	r := cb.rpc(&ninep.Fcall{Type: ninep.Tread, Tag: 1, Fid: 1, Count: 100})
	if string(r.Data) != "shared file" {
		t.Errorf("survivor read %q after neighbor death", r.Data)
	}
}

func TestCacheServesSecondTenantWithoutBacking(t *testing.T) {
	srv := gatewayServer(t, map[string]string{"lib/shared": strings.Repeat("x", 5000)})

	read := func(mountpoint string) {
		local := ns.New("me", ramfs.New("me").Root())
		cl, err := ImportConfig(local, servedConn(t, srv), "", mountpoint, ns.MREPL, mnt.FileConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		b, err := local.ReadFile(mountpoint + "/lib/shared")
		if err != nil || len(b) != 5000 {
			t.Fatalf("read %d bytes, %v", len(b), err)
		}
	}

	read("/n/gw")
	misses := srv.Cache().Misses.Load()
	if misses == 0 {
		t.Fatalf("first tenant's read did not fill the cache")
	}
	hitsBefore := srv.Cache().Hits.Load()

	// The second tenant's read is served entirely from the cache: the
	// miss counter — the only path that touches the backing tree —
	// must not move, and every fragment it touched must be a hit.
	read("/n/gw2")
	if got := srv.Cache().Misses.Load(); got != misses {
		t.Errorf("second tenant touched the backing tree: misses %d -> %d", misses, got)
	}
	if got := srv.Cache().Hits.Load(); got <= hitsBefore {
		t.Errorf("second tenant's reads were not cache hits: %d -> %d", hitsBefore, got)
	}
}

func TestStatsCarryPerConnBill(t *testing.T) {
	srv := gatewayServer(t, map[string]string{"f": "stats"})
	for i := 0; i < 2; i++ {
		local := ns.New("me", ramfs.New("me").Root())
		cl, err := Import(local, servedConn(t, srv), "", "/r", ns.MREPL)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if _, err := local.ReadFile("/r/f"); err != nil {
			t.Fatal(err)
		}
	}
	text := srv.Stats()
	// Scalar lines parse; the per-connection bill lines carry a space
	// in the name and are skipped by design.
	m := obs.ParseStats(text)
	if m["conns"] < 2 || m["rpcs"] == 0 {
		t.Errorf("scalar stats missing: %v in\n%s", m, text)
	}
	if _, ok := m["cache-hits"]; !ok {
		t.Errorf("cache counters missing from gateway stats:\n%s", text)
	}
	if strings.Count(text, "conn ") < 2 {
		t.Errorf("per-connection bill missing:\n%s", text)
	}
	for name := range m {
		if strings.HasPrefix(name, "conn ") {
			t.Errorf("bill line leaked into parsed scalars: %q", name)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	rfs := ramfs.New("gw")
	rfs.WriteFile("f", []byte("plain"), 0664)
	srv := NewServer(ns.New("gw", rfs.Root()), Config{CacheBytes: -1})
	if srv.Cache() != nil {
		t.Fatalf("negative CacheBytes should disable the cache")
	}
	local := ns.New("me", ramfs.New("me").Root())
	cl, err := Import(local, servedConn(t, srv), "", "/r", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if b, err := local.ReadFile("/r/f"); err != nil || string(b) != "plain" {
		t.Fatalf("uncached read %q, %v", b, err)
	}
}
