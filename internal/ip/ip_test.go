package ip

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ether"
)

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("135.104.9.31")
	if err != nil || a != (Addr{135, 104, 9, 31}) {
		t.Fatalf("ParseAddr = %v, %v", a, err)
	}
	if a.String() != "135.104.9.31" {
		t.Errorf("String = %q", a)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) accepted", bad)
		}
	}
}

func TestMaskAndClassMask(t *testing.T) {
	a := Addr{135, 104, 9, 31}
	if a.Mask(Addr{255, 255, 255, 0}) != (Addr{135, 104, 9, 0}) {
		t.Error("Mask wrong")
	}
	if ClassMask(Addr{10, 0, 0, 1}) != (Addr{255, 0, 0, 0}) {
		t.Error("class A mask")
	}
	if ClassMask(Addr{135, 104, 0, 1}) != (Addr{255, 255, 0, 0}) {
		t.Error("class B mask")
	}
	if ClassMask(Addr{192, 168, 0, 1}) != (Addr{255, 255, 255, 0}) {
		t.Error("class C mask")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{ID: 99, TTL: 64, Proto: ProtoIL,
		Src: Addr{135, 104, 9, 31}, Dst: Addr{135, 104, 53, 11}}
	pkt := h.Marshal([]byte("transport payload"))
	g, payload, err := Unmarshal(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != 99 || g.TTL != 64 || g.Proto != ProtoIL || g.Src != h.Src || g.Dst != h.Dst {
		t.Errorf("header mismatch %+v", g)
	}
	if string(payload) != "transport payload" {
		t.Errorf("payload %q", payload)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	h := Header{TTL: 1, Proto: ProtoUDP, Src: Addr{1, 2, 3, 4}, Dst: Addr{5, 6, 7, 8}}
	pkt := h.Marshal([]byte("x"))
	// Flip a header bit: checksum must catch it.
	pkt[9] ^= 0x40
	if _, _, err := Unmarshal(pkt); err != ErrBadChecksum {
		t.Errorf("corrupted header error = %v", err)
	}
	if _, _, err := Unmarshal(pkt[:10]); err != ErrShortPacket {
		t.Errorf("short packet error = %v", err)
	}
	pkt2 := h.Marshal(nil)
	pkt2[0] = 0x46
	if _, _, err := Unmarshal(pkt2); err != ErrBadVersion {
		t.Errorf("bad version error = %v", err)
	}
}

// Property: marshaled headers always verify and round-trip.
func TestHeaderQuick(t *testing.T) {
	f := func(id uint16, ttl, proto uint8, src, dst [4]byte, n uint8) bool {
		h := Header{ID: id, TTL: ttl, Proto: proto, Src: src, Dst: dst}
		payload := make([]byte, n)
		g, p, err := Unmarshal(h.Marshal(payload))
		return err == nil && g.ID == id && g.TTL == ttl && g.Proto == proto &&
			g.Src == Addr(src) && g.Dst == Addr(dst) && len(p) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChecksumProperties(t *testing.T) {
	// Appending the checksum of p to p sums to zero.
	p := []byte{1, 2, 3, 4, 5, 6}
	ck := Checksum(p)
	q := append(append([]byte(nil), p...), byte(ck>>8), byte(ck))
	if Checksum(q) != 0 {
		t.Error("self-verifying checksum property violated")
	}
}

// twoHosts builds two machines on one ether segment.
func twoHosts(t *testing.T) (*Stack, *Stack, Addr, Addr) {
	t.Helper()
	seg := ether.NewSegment("e0", ether.Profile{})
	t.Cleanup(seg.Close)
	e1 := seg.NewInterface("ether0")
	e2 := seg.NewInterface("ether0")
	s1, s2 := NewStack(), NewStack()
	a1 := Addr{135, 104, 9, 1}
	a2 := Addr{135, 104, 9, 2}
	mask := Addr{255, 255, 255, 0}
	if _, err := s1.Bind(e1, a1, mask); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Bind(e2, a2, mask); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s1.Close(); s2.Close() })
	return s1, s2, a1, a2
}

func recvChan(st *Stack, proto uint8) chan []byte {
	ch := make(chan []byte, 16)
	st.Register(proto, func(src, dst Addr, payload []byte) {
		ch <- append([]byte(nil), payload...)
	})
	return ch
}

func expect(t *testing.T, ch chan []byte, want string) {
	t.Helper()
	select {
	case got := <-ch:
		if string(got) != want {
			t.Fatalf("received %q, want %q", got, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for %q", want)
	}
}

func TestSendReceiveWithARP(t *testing.T) {
	s1, s2, a1, a2 := twoHosts(t)
	ch2 := recvChan(s2, ProtoUDP)
	ch1 := recvChan(s1, ProtoUDP)
	// First packet triggers ARP resolution and is held until reply.
	if err := s1.Send(ProtoUDP, Addr{}, a2, []byte("first")); err != nil {
		t.Fatal(err)
	}
	expect(t, ch2, "first")
	// Replies use the learned entry (and re-learn from the request).
	if err := s2.Send(ProtoUDP, Addr{}, a1, []byte("back")); err != nil {
		t.Fatal(err)
	}
	expect(t, ch1, "back")
}

func TestLoopbackDelivery(t *testing.T) {
	s1, _, a1, _ := twoHosts(t)
	ch := recvChan(s1, ProtoIL)
	if err := s1.Send(ProtoIL, Addr{}, a1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	expect(t, ch, "self")
	if err := s1.Send(ProtoIL, Addr{}, Addr{127, 0, 0, 1}, []byte("lo")); err != nil {
		t.Fatal(err)
	}
	expect(t, ch, "lo")
}

func TestNoRoute(t *testing.T) {
	s1, _, _, _ := twoHosts(t)
	err := s1.Send(ProtoUDP, Addr{}, Addr{10, 9, 8, 7}, []byte("x"))
	if err == nil {
		t.Fatal("send to unreachable subnet succeeded")
	}
	if s1.NoRoute.Load() != 1 {
		t.Errorf("NoRoute counter %d", s1.NoRoute.Load())
	}
}

func TestForwardingThroughGateway(t *testing.T) {
	// Three machines, two subnets, one gateway in the middle — the
	// shape of the paper's ndb subnet entries with ipgw.
	segA := ether.NewSegment("eA", ether.Profile{})
	segB := ether.NewSegment("eB", ether.Profile{})
	defer segA.Close()
	defer segB.Close()

	maskC := Addr{255, 255, 255, 0}
	host1 := NewStack()
	gw := NewStack()
	host2 := NewStack()
	defer host1.Close()
	defer gw.Close()
	defer host2.Close()

	h1 := Addr{135, 104, 51, 2}
	gwA := Addr{135, 104, 51, 1}
	gwB := Addr{135, 104, 52, 1}
	h2 := Addr{135, 104, 52, 2}

	if _, err := host1.Bind(segA.NewInterface("e"), h1, maskC); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Bind(segA.NewInterface("e"), gwA, maskC); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Bind(segB.NewInterface("e"), gwB, maskC); err != nil {
		t.Fatal(err)
	}
	if _, err := host2.Bind(segB.NewInterface("e"), h2, maskC); err != nil {
		t.Fatal(err)
	}
	gw.SetForwarding(true)
	host1.AddRoute(Addr{135, 104, 52, 0}, maskC, gwA)
	host2.AddRoute(Addr{135, 104, 51, 0}, maskC, gwB)

	ch := recvChan(host2, ProtoUDP)
	if err := host1.Send(ProtoUDP, Addr{}, h2, []byte("via gateway")); err != nil {
		t.Fatal(err)
	}
	expect(t, ch, "via gateway")
	if gw.Forwarded.Load() == 0 {
		t.Error("gateway forwarded counter is zero")
	}
	// And the reverse path.
	ch1 := recvChan(host1, ProtoUDP)
	if err := host2.Send(ProtoUDP, Addr{}, h1, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	expect(t, ch1, "reply")
}

func TestDefaultRoute(t *testing.T) {
	segA := ether.NewSegment("eA", ether.Profile{})
	defer segA.Close()
	mask := Addr{255, 255, 255, 0}
	h := NewStack()
	gw := NewStack()
	defer h.Close()
	defer gw.Close()
	ha := Addr{192, 168, 1, 2}
	gwa := Addr{192, 168, 1, 1}
	h.Bind(segA.NewInterface("e"), ha, mask)
	gw.Bind(segA.NewInterface("e"), gwa, mask)
	h.AddDefaultRoute(gwa)
	// The gateway has no route onward, but the packet must at least
	// reach it (count as received there since it's addressed beyond).
	if err := h.Send(ProtoUDP, Addr{}, Addr{8, 8, 8, 8}, []byte("out")); err != nil {
		t.Fatalf("default route send: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // delivery is asynchronous via ARP
}

func TestLocalAddrForAndMTU(t *testing.T) {
	s1, _, a1, a2 := twoHosts(t)
	la, err := s1.LocalAddrFor(a2)
	if err != nil || la != a1 {
		t.Errorf("LocalAddrFor = %v, %v", la, err)
	}
	if mtu := s1.MTUFor(a2); mtu != 1500-HdrLen {
		t.Errorf("MTUFor = %d", mtu)
	}
	if mtu := s1.MTUFor(a1); mtu != 64*1024 {
		t.Errorf("local MTUFor = %d", mtu)
	}
}

func TestStatsText(t *testing.T) {
	s1, _, _, a2 := twoHosts(t)
	recvChan(s1, ProtoUDP)
	s1.Send(ProtoUDP, Addr{}, a2, []byte("x"))
	if s := s1.Stats(); s == "" {
		t.Error("empty stats")
	}
	if s1.OutPackets.Load() != 1 {
		t.Errorf("out packets %d", s1.OutPackets.Load())
	}
}
