package ip

import (
	"strconv"
	"strings"
)

// ParseHostPort parses the ASCII dial strings written to IP protocol
// ctl files: "135.104.9.31!17008", "*!564", or a bare port "564".
// The host "*" (or an empty host) yields the zero address, meaning any
// local address.
func ParseHostPort(s string) (Addr, uint16, error) {
	host, portStr, ok := strings.Cut(s, "!")
	if !ok {
		portStr, host = host, "*"
	}
	var a Addr
	if host != "*" && host != "" {
		var err error
		a, err = ParseAddr(host)
		if err != nil {
			return Addr{}, 0, err
		}
	}
	p, err := strconv.Atoi(portStr)
	if err != nil || p < 0 || p > 0xffff {
		return Addr{}, 0, ErrBadAddr
	}
	return a, uint16(p), nil
}

// HostPort formats an address!port pair as the local/remote files do.
func HostPort(a Addr, port uint16) string {
	return a.String() + "!" + strconv.Itoa(int(port))
}
