// Package ip implements the Internet protocol substrate of §2.3: IPv4
// headers with real checksums over the simulated Ethernet, ARP
// resolution (the "user-level protocols like ARP" of the LANCE driver,
// here a kernel module on its own ether conversation), subnet routing
// with ndb-style gateways, optional forwarding, and protocol
// demultiplexing for the transport protocols (TCP, UDP, IL) layered
// above. IP fragmentation is not implemented: senders respect the
// interface MTU, as documented in DESIGN.md.
package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/block"
)

// Addr is an IPv4 address.
type Addr [4]byte

// String formats in dotted decimal.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

// Mask applies a netmask.
func (a Addr) Mask(m Addr) Addr {
	var r Addr
	for i := range a {
		r[i] = a[i] & m[i]
	}
	return r
}

// ErrBadAddr reports an unparsable address.
var ErrBadAddr = errors.New("ip: bad address")

// ParseAddr parses dotted decimal.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return a, ErrBadAddr
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return a, ErrBadAddr
		}
		a[i] = byte(v)
	}
	return a, nil
}

// MustParseAddr parses or panics; for composing test topologies.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ClassMask returns the classful default mask for a, as ndb assumes
// when no ipmask attribute is given.
func ClassMask(a Addr) Addr {
	switch {
	case a[0] < 128:
		return Addr{255, 0, 0, 0}
	case a[0] < 192:
		return Addr{255, 255, 0, 0}
	default:
		return Addr{255, 255, 255, 0}
	}
}

// ParseMask parses a netmask in dotted decimal.
func ParseMask(s string) (Addr, error) { return ParseAddr(s) }

// Protocol numbers carried in the IP header.
const (
	ProtoTCP = 6
	ProtoUDP = 17
	// ProtoIL is IL's IP protocol number, 40, as allocated to it.
	ProtoIL = 40
)

// HdrLen is the length of our option-less IPv4 header.
const HdrLen = 20

// DefaultTTL is the initial time-to-live.
const DefaultTTL = 64

// Header is an IPv4 packet header (no options).
type Header struct {
	Len   uint16 // total length including header
	ID    uint16
	TTL   uint8
	Proto uint8
	Src   Addr
	Dst   Addr
}

// Marshaling errors.
var (
	ErrShortPacket = errors.New("ip: short packet")
	ErrBadVersion  = errors.New("ip: bad version")
	ErrBadChecksum = errors.New("ip: bad header checksum")
	ErrBadLength   = errors.New("ip: bad length field")
)

// Checksum computes the Internet checksum of p. Per RFC 1071, the
// ones-complement sum is associative, so 32-bit words are accumulated
// eight bytes at a time into a 64-bit register and the carries folded
// at the end — the classic deferred-carry form, ~6x the byte-pair
// loop on the 8K payloads IL carries for 9P.
func Checksum(p []byte) uint16 {
	var sum uint64
	for len(p) >= 8 {
		sum += uint64(binary.BigEndian.Uint32(p))
		sum += uint64(binary.BigEndian.Uint32(p[4:]))
		p = p[8:]
	}
	for len(p) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(p))
		p = p[2:]
	}
	if len(p) == 1 {
		sum += uint64(p[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// Marshal prepends the header to payload and returns the full packet.
func (h *Header) Marshal(payload []byte) []byte {
	pkt := make([]byte, HdrLen+len(payload))
	pkt[0] = 0x45 // version 4, ihl 5
	total := uint16(HdrLen + len(payload))
	pkt[2] = byte(total >> 8)
	pkt[3] = byte(total)
	pkt[4] = byte(h.ID >> 8)
	pkt[5] = byte(h.ID)
	pkt[8] = h.TTL
	pkt[9] = h.Proto
	copy(pkt[12:16], h.Src[:])
	copy(pkt[16:20], h.Dst[:])
	ck := Checksum(pkt[:HdrLen])
	pkt[10] = byte(ck >> 8)
	pkt[11] = byte(ck)
	copy(pkt[HdrLen:], payload)
	return pkt
}

// PrependTo pushes the header into b's headroom in place — the block
// discipline's alternative to Marshal's allocate-and-copy. b's window
// must hold the payload; afterwards it holds the whole packet.
func (h *Header) PrependTo(b *block.Block) {
	total := uint16(HdrLen + b.Len())
	pkt := b.Prepend(HdrLen)
	pkt[0] = 0x45 // version 4, ihl 5
	pkt[1] = 0
	pkt[2] = byte(total >> 8)
	pkt[3] = byte(total)
	pkt[4] = byte(h.ID >> 8)
	pkt[5] = byte(h.ID)
	pkt[6] = 0
	pkt[7] = 0
	pkt[8] = h.TTL
	pkt[9] = h.Proto
	pkt[10] = 0
	pkt[11] = 0
	copy(pkt[12:16], h.Src[:])
	copy(pkt[16:20], h.Dst[:])
	ck := Checksum(pkt[:HdrLen])
	pkt[10] = byte(ck >> 8)
	pkt[11] = byte(ck)
}

// Unmarshal validates a packet and returns its header and payload.
func Unmarshal(pkt []byte) (Header, []byte, error) {
	var h Header
	if len(pkt) < HdrLen {
		return h, nil, ErrShortPacket
	}
	if pkt[0] != 0x45 {
		return h, nil, ErrBadVersion
	}
	if Checksum(pkt[:HdrLen]) != 0 {
		return h, nil, ErrBadChecksum
	}
	h.Len = uint16(pkt[2])<<8 | uint16(pkt[3])
	if int(h.Len) > len(pkt) || h.Len < HdrLen {
		return h, nil, ErrBadLength
	}
	h.ID = uint16(pkt[4])<<8 | uint16(pkt[5])
	h.TTL = pkt[8]
	h.Proto = pkt[9]
	copy(h.Src[:], pkt[12:16])
	copy(h.Dst[:], pkt[16:20])
	return h, pkt[HdrLen:h.Len], nil
}
