package ip

import (
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/ether"
)

// ARP over the simulated Ethernet: standard 28-byte IPv4-over-Ethernet
// request/reply packets (htype 1, ptype 0x0800). Unresolved traffic is
// held briefly while a request is outstanding, then flushed on reply.

const arpPktLen = 28

const (
	arpRequest = 1
	arpReply   = 2
)

// arpHold bounds packets queued per unresolved address.
const arpHold = 16

type arpCache struct {
	ifc *Ifc

	mu      sync.Mutex
	entries map[Addr]ether.Addr
	pending map[Addr][]*block.Block
}

func newArpCache(ifc *Ifc) *arpCache {
	return &arpCache{
		ifc:     ifc,
		entries: make(map[Addr]ether.Addr),
		pending: make(map[Addr][]*block.Block),
	}
}

// send transmits an IP packet to nexthop, resolving its hardware
// address first if necessary. Ownership of pkt transfers: the cache
// either hands it to the wire, queues it for the reply, or frees it.
func (a *arpCache) send(nexthop Addr, pkt *block.Block) error {
	a.mu.Lock()
	hw, ok := a.entries[nexthop]
	if ok {
		a.mu.Unlock()
		return a.ifc.conn.TransmitBlock(hw, pkt)
	}
	q := a.pending[nexthop]
	if len(q) < arpHold {
		a.pending[nexthop] = append(q, pkt)
	} else {
		pkt.Free() // hold queue full: dropped like real ARP
	}
	first := len(q) == 0
	a.mu.Unlock()
	if first {
		a.request(nexthop)
		// Re-request a few times in case the first broadcast was
		// lost on a lossy medium; gives up silently like real ARP.
		ck := a.ifc.stack.clk
		ck.Go(func() {
			for range 3 {
				ck.Sleep(50 * time.Millisecond)
				a.mu.Lock()
				_, resolved := a.entries[nexthop]
				waiting := len(a.pending[nexthop]) > 0
				a.mu.Unlock()
				if resolved || !waiting {
					return
				}
				a.request(nexthop)
			}
			a.mu.Lock()
			abandoned := a.pending[nexthop]
			delete(a.pending, nexthop)
			a.mu.Unlock()
			for _, b := range abandoned {
				b.Free()
			}
		})
	}
	return nil
}

// request broadcasts a who-has.
func (a *arpCache) request(target Addr) {
	p := make([]byte, arpPktLen)
	putArpHeader(p, arpRequest)
	hw := a.ifc.ifc.Addr()
	copy(p[8:14], hw[:])
	copy(p[14:18], a.ifc.addr[:])
	// target hardware unknown (zero); target protocol address:
	copy(p[24:28], target[:])
	a.ifc.arpc.Transmit(ether.Broadcast, p)
}

func putArpHeader(p []byte, op int) {
	p[0], p[1] = 0, 1 // htype ethernet
	p[2], p[3] = 0x08, 0x00
	p[4], p[5] = 6, 4 // hlen, plen
	p[6], p[7] = byte(op>>8), byte(op)
}

// recvARP handles a received ARP frame: learn the sender, answer
// requests for our address, flush pending traffic.
func (a *arpCache) recvARP(frame []byte) {
	if len(frame) < ether.HdrLen+arpPktLen {
		return
	}
	p := frame[ether.HdrLen:]
	op := int(p[6])<<8 | int(p[7])
	var senderHW ether.Addr
	copy(senderHW[:], p[8:14])
	var senderIP, targetIP Addr
	copy(senderIP[:], p[14:18])
	copy(targetIP[:], p[24:28])

	a.mu.Lock()
	a.entries[senderIP] = senderHW
	queued := a.pending[senderIP]
	delete(a.pending, senderIP)
	a.mu.Unlock()
	for _, pkt := range queued {
		a.ifc.conn.TransmitBlock(senderHW, pkt)
	}

	if op == arpRequest && targetIP == a.ifc.addr {
		r := make([]byte, arpPktLen)
		putArpHeader(r, arpReply)
		hw := a.ifc.ifc.Addr()
		copy(r[8:14], hw[:])
		copy(r[14:18], a.ifc.addr[:])
		copy(r[18:24], senderHW[:])
		copy(r[24:28], senderIP[:])
		a.ifc.arpc.Transmit(senderHW, r)
	}
}

// Lookup returns the cached hardware address for ip, if any.
func (a *arpCache) Lookup(ip Addr) (ether.Addr, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	hw, ok := a.entries[ip]
	return hw, ok
}
