package ip

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/ether"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// Handler receives a demultiplexed transport payload. The payload is
// borrowed — it aliases a receive buffer that is recycled when the
// handler returns — so a handler that retains bytes must copy them.
type Handler func(src, dst Addr, payload []byte)

// Stack is one machine's IP layer: bound interfaces, a routing table,
// ARP, and the transport protocol dispatch table.
type Stack struct {
	clk      vclock.Clock
	mu       sync.RWMutex
	ifcs     []*Ifc
	routes   []Route
	handlers map[uint8]Handler
	forward  bool

	ipID atomic.Uint32

	InPackets   atomic.Int64
	OutPackets  atomic.Int64
	Forwarded   atomic.Int64
	BadHeaders  atomic.Int64
	NoRoute     atomic.Int64
	Unreachable atomic.Int64 // no handler for protocol
}

// Ifc is an IP interface: an ether conversation pair (IP + ARP)
// configured with a local address and mask.
type Ifc struct {
	stack  *Stack
	conn   *ether.Conn
	arpc   *ether.Conn
	ifc    *ether.Interface
	addr   Addr
	mask   Addr
	arp    *arpCache
	closed atomic.Bool
}

// Route sends packets for Dst/Mask via Gateway (0 = directly attached).
type Route struct {
	Dst     Addr
	Mask    Addr
	Gateway Addr
}

// NewStack returns an empty stack on the real clock.
func NewStack() *Stack { return NewStackClock(nil) }

// NewStackClock returns an empty stack whose timers (and those of the
// transports built on it) run on ck; nil means the real clock.
func NewStackClock(ck vclock.Clock) *Stack {
	return &Stack{clk: vclock.Or(ck), handlers: make(map[uint8]Handler)}
}

// Clock returns the stack's clock.
func (s *Stack) Clock() vclock.Clock { return s.clk }

// SetForwarding enables relaying packets between interfaces, making
// the machine an IP gateway.
func (st *Stack) SetForwarding(on bool) {
	st.mu.Lock()
	st.forward = on
	st.mu.Unlock()
}

// Register installs the receive handler for an IP protocol number.
func (st *Stack) Register(proto uint8, h Handler) {
	st.mu.Lock()
	st.handlers[proto] = h
	st.mu.Unlock()
}

// Bind attaches the stack to an Ethernet interface with a local
// address: it opens two conversations on the device — packet type
// 0x0800 for IP and 0x0806 for ARP — exactly as a user process would
// through the file tree.
func (st *Stack) Bind(eifc *ether.Interface, addr, mask Addr) (*Ifc, error) {
	ipConn, err := eifc.OpenConn()
	if err != nil {
		return nil, err
	}
	ipConn.SetType(ether.TypeIP)
	arpConn, err := eifc.OpenConn()
	if err != nil {
		ipConn.Close()
		return nil, err
	}
	arpConn.SetType(ether.TypeARP)
	ifc := &Ifc{
		stack: st,
		conn:  ipConn,
		arpc:  arpConn,
		ifc:   eifc,
		addr:  addr,
		mask:  mask,
	}
	ifc.arp = newArpCache(ifc)
	ipConn.SetDeliver(ifc.recvIP)
	arpConn.SetDeliver(ifc.arp.recvARP)
	st.mu.Lock()
	st.ifcs = append(st.ifcs, ifc)
	// A directly attached route for the subnet.
	st.routes = append(st.routes, Route{Dst: addr.Mask(mask), Mask: mask})
	st.mu.Unlock()
	return ifc, nil
}

// Addr returns the interface's IP address.
func (ifc *Ifc) Addr() Addr { return ifc.addr }

// Close releases the interface's ether conversations.
func (ifc *Ifc) Close() {
	if ifc.closed.CompareAndSwap(false, true) {
		ifc.conn.Close()
		ifc.arpc.Close()
	}
}

// Close shuts down every interface.
func (st *Stack) Close() {
	st.mu.Lock()
	ifcs := st.ifcs
	st.ifcs = nil
	st.mu.Unlock()
	for _, ifc := range ifcs {
		ifc.Close()
	}
}

// AddRoute installs a route; gateways come from the ndb ipgw
// attribute.
func (st *Stack) AddRoute(dst, mask, gw Addr) {
	st.mu.Lock()
	st.routes = append(st.routes, Route{Dst: dst.Mask(mask), Mask: mask, Gateway: gw})
	st.mu.Unlock()
}

// AddDefaultRoute installs a route for everything.
func (st *Stack) AddDefaultRoute(gw Addr) {
	st.AddRoute(Addr{}, Addr{}, gw)
}

// Addrs lists the local addresses.
func (st *Stack) Addrs() []Addr {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var as []Addr
	for _, ifc := range st.ifcs {
		as = append(as, ifc.addr)
	}
	return as
}

// IsLocal reports whether a names this machine.
func (st *Stack) IsLocal(a Addr) bool {
	if a == (Addr{127, 0, 0, 1}) {
		return true
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, ifc := range st.ifcs {
		if ifc.addr == a {
			return true
		}
	}
	return false
}

// route picks the interface and next hop for dst: a directly attached
// subnet wins; otherwise the most specific matching route's gateway,
// which itself must be on an attached subnet.
func (st *Stack) route(dst Addr) (*Ifc, Addr, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	// Most specific route match.
	var best *Route
	for i := range st.routes {
		r := &st.routes[i]
		if dst.Mask(r.Mask) != r.Dst {
			continue
		}
		if best == nil || wider(best.Mask, r.Mask) {
			best = r
		}
	}
	if best == nil {
		return nil, Addr{}, vfs.ErrNoNet
	}
	nexthop := dst
	if !best.Gateway.IsZero() {
		nexthop = best.Gateway
	}
	for _, ifc := range st.ifcs {
		if nexthop.Mask(ifc.mask) == ifc.addr.Mask(ifc.mask) {
			return ifc, nexthop, nil
		}
	}
	return nil, Addr{}, vfs.ErrNoNet
}

// wider reports whether mask a is strictly wider (less specific) than b.
func wider(a, b Addr) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// LocalAddrFor returns the source address the stack would use to reach
// dst; connecting transports use it to fill their local endpoint.
func (st *Stack) LocalAddrFor(dst Addr) (Addr, error) {
	if st.IsLocal(dst) {
		return dst, nil
	}
	ifc, _, err := st.route(dst)
	if err != nil {
		return Addr{}, err
	}
	return ifc.addr, nil
}

// MTUFor returns the transport MTU (medium MTU minus the IP header)
// on the path interface toward dst.
func (st *Stack) MTUFor(dst Addr) int {
	if st.IsLocal(dst) {
		return 64 * 1024
	}
	ifc, _, err := st.route(dst)
	if err != nil {
		return 1500 - HdrLen
	}
	return ifc.ifc.MTU() - HdrLen
}

// Send transmits payload to dst as protocol proto. A zero src is
// filled from the chosen interface. Local destinations loop back
// without touching the wire. The payload is borrowed: the stack is
// done with it when Send returns.
func (st *Stack) Send(proto uint8, src, dst Addr, payload []byte) error {
	if st.IsLocal(dst) {
		if src.IsZero() {
			src = dst
		}
		st.OutPackets.Add(1)
		st.deliverLocal(proto, src, dst, payload)
		return nil
	}
	return st.sendRemote(proto, src, dst, block.Copy(payload, block.DefaultHeadroom))
}

// SendBlock is Send for a payload the caller already owns as a pooled
// block with header headroom; ownership transfers to the stack, which
// prepends the IP header in place instead of re-marshaling.
//
//netvet:owns b
func (st *Stack) SendBlock(proto uint8, src, dst Addr, b *block.Block) error {
	if st.IsLocal(dst) {
		if src.IsZero() {
			src = dst
		}
		st.OutPackets.Add(1)
		st.deliverLocal(proto, src, dst, b.Bytes())
		b.Free()
		return nil
	}
	return st.sendRemote(proto, src, dst, b)
}

func (st *Stack) sendRemote(proto uint8, src, dst Addr, b *block.Block) error {
	ifc, nexthop, err := st.route(dst)
	if err != nil {
		st.NoRoute.Add(1)
		b.Free()
		return err
	}
	if src.IsZero() {
		src = ifc.addr
	}
	if HdrLen+b.Len() > ifc.ifc.MTU() {
		n := HdrLen + b.Len()
		b.Free()
		return fmt.Errorf("ip: packet too large for interface (%d > %d)", n, ifc.ifc.MTU())
	}
	h := Header{
		ID:    uint16(st.ipID.Add(1)),
		TTL:   DefaultTTL,
		Proto: proto,
		Src:   src,
		Dst:   dst,
	}
	h.PrependTo(b)
	st.OutPackets.Add(1)
	return ifc.arp.send(nexthop, b)
}

// deliverLocal hands a payload to the registered transport.
func (st *Stack) deliverLocal(proto uint8, src, dst Addr, payload []byte) {
	st.mu.RLock()
	h := st.handlers[proto]
	st.mu.RUnlock()
	if h == nil {
		st.Unreachable.Add(1)
		return
	}
	h(src, dst, payload)
}

// recvIP handles a received Ethernet frame carrying IP.
func (ifc *Ifc) recvIP(frame []byte) {
	st := ifc.stack
	if len(frame) < ether.HdrLen {
		return
	}
	h, payload, err := Unmarshal(frame[ether.HdrLen:])
	if err != nil {
		st.BadHeaders.Add(1)
		return
	}
	if st.IsLocal(h.Dst) {
		st.InPackets.Add(1)
		st.deliverLocal(h.Proto, h.Src, h.Dst, payload)
		return
	}
	// Not for us: forward if we are a gateway.
	st.mu.RLock()
	fwd := st.forward
	st.mu.RUnlock()
	if !fwd {
		return
	}
	if h.TTL <= 1 {
		return
	}
	out, nexthop, err := st.route(h.Dst)
	if err != nil {
		st.NoRoute.Add(1)
		return
	}
	h.TTL--
	st.Forwarded.Add(1)
	// The forwarded copy is mandatory: payload aliases the inbound
	// receive buffer, which dies when this handler returns.
	relay := block.Copy(payload, block.DefaultHeadroom)
	h.PrependTo(relay)
	out.arp.send(nexthop, relay)
}

// Stats formats the stack counters in the ASCII style of /net/ipifc
// status files.
func (st *Stack) Stats() string {
	return fmt.Sprintf("in: %d\nout: %d\nforwarded: %d\nbad headers: %d\nno route: %d\nunreachable: %d\n",
		st.InPackets.Load(), st.OutPackets.Load(), st.Forwarded.Load(),
		st.BadHeaders.Load(), st.NoRoute.Load(), st.Unreachable.Load())
}
