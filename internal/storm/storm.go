// Package storm boots large Datakit worlds and drives the registry
// storm: every machine in the hierarchy repeatedly calls one registry
// service, the way a building full of terminals hammers the connection
// machinery after a power cut. On the virtual clock the whole
// exercise — a thousand kernels booting, tens of thousands of calls
// over the switch — is a discrete-event simulation: simulated hours
// cost wall-clock seconds, and a seed pins every impairment decision.
package storm

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/medium"
	"repro/internal/ns"
	"repro/internal/vclock"
)

// Datakit hierarchy the machines spread over: area/exchange pairs in
// the style of the paper's nj/astro.
var (
	areas     = []string{"nj", "mh", "il", "dk"}
	exchanges = []string{"astro", "coma", "lyra", "vega"}
)

// Config sizes one storm.
type Config struct {
	// Machines is the number of calling machines booted besides the
	// registry itself.
	Machines int
	// Sim is the simulated duration each machine keeps calling for.
	Sim time.Duration
	// Interval is the mean pause between one machine's calls; 0
	// derives Sim/8.
	Interval time.Duration
	// Seed pins the call pacing and payload sizes (and, through the
	// medium, any impairment decisions).
	Seed int64
	// Virtual runs the world on a discrete-event clock; otherwise the
	// storm burns real time.
	Virtual bool
	// Latency and Bandwidth shape the switch's circuits; zero means
	// a 2ms / 1 MB/s WAN-ish profile.
	Latency   time.Duration
	Bandwidth int64
}

func (c Config) withDefaults() Config {
	if c.Machines == 0 {
		c.Machines = 1000
	}
	if c.Sim == 0 {
		c.Sim = 75 * time.Second
	}
	if c.Interval == 0 {
		c.Interval = c.Sim / 8
	}
	if c.Latency == 0 {
		c.Latency = 2 * time.Millisecond
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 1 << 20
	}
	return c
}

// Result is what the storm did.
type Result struct {
	Machines  int
	Calls     int64 // registry calls that completed, echo verified
	Errors    int64 // dials refused or conversations cut short
	Bytes     int64 // payload bytes echoed back
	Simulated time.Duration
	Wall      time.Duration
}

func (r *Result) String() string {
	return fmt.Sprintf("storm: %d machines, %d calls (%d errors), %d bytes echoed, simulated %v in %v wall",
		r.Machines, r.Calls, r.Errors, r.Bytes,
		r.Simulated.Round(time.Millisecond), r.Wall.Round(time.Millisecond))
}

// ndbText writes the database for n machines plus the registry,
// spread across the area/exchange hierarchy.
func ndbText(n int) string {
	var b strings.Builder
	b.WriteString("sys=registry\n\tdk=nj/astro/registry\n")
	for i := range n {
		name := machineName(i)
		fmt.Fprintf(&b, "sys=%s\n\tdk=%s\n", name, dkName(i))
	}
	return b.String()
}

func machineName(i int) string { return fmt.Sprintf("m%04d", i) }

func dkName(i int) string {
	area := areas[i%len(areas)]
	exch := exchanges[(i/len(areas))%len(exchanges)]
	return area + "/" + exch + "/" + machineName(i)
}

// Run boots the world and drives the storm to completion.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Machines: cfg.Machines}
	wall := time.Now() //netvet:ignore realtime wall-clock half of the simulation report
	var err error
	if cfg.Virtual {
		v := vclock.NewVirtual()
		v.Run(func() { err = run(v, cfg, res) })
	} else {
		err = run(vclock.Real, cfg, res)
	}
	res.Wall = time.Since(wall) //netvet:ignore realtime wall-clock half of the simulation report
	if err != nil {
		return nil, err
	}
	return res, nil
}

func run(ck vclock.Clock, cfg Config, res *Result) error {
	w, err := core.NewWorldClock(ndbText(cfg.Machines), ck)
	if err != nil {
		return err
	}
	defer w.Close()
	w.AddDatakit(medium.Profile{
		Latency:   cfg.Latency,
		Bandwidth: cfg.Bandwidth,
		MTU:       2048,
		Seed:      cfg.Seed,
	})

	reg, err := w.NewMachine(core.MachineConfig{Name: "registry", Datakit: true}) //netvet:ignore unclosed-resource the world closes its machines
	if err != nil {
		return fmt.Errorf("storm: boot registry: %w", err)
	}
	if _, err := reg.ServeEcho("dk!*!registry"); err != nil {
		return fmt.Errorf("storm: announce registry: %w", err)
	}

	machines := make([]*core.Machine, cfg.Machines)
	for i := range machines {
		m, err := w.NewMachine(core.MachineConfig{Name: machineName(i), Datakit: true})
		if err != nil {
			return fmt.Errorf("storm: boot %s: %w", machineName(i), err)
		}
		machines[i] = m
	}

	var calls, errors, bytes atomic.Int64
	wg := vclock.NewWaitGroup(ck)
	for i, m := range machines {
		wg.Add(1)
		m := m
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		ck.Go(func() {
			defer wg.Done()
			stormClient(ck, cfg, m.NS, rng, &calls, &errors, &bytes)
		})
	}
	wg.Wait()
	res.Calls = calls.Load()
	res.Errors = errors.Load()
	res.Bytes = bytes.Load()
	res.Simulated = cfg.Sim
	return nil
}

// stormClient is one machine's life during the storm: stagger in,
// then call the registry, verify the echo, and pause until the
// simulated duration has elapsed.
func stormClient(ck vclock.Clock, cfg Config, nsp *ns.Namespace, rng *rand.Rand,
	calls, errors, bytes *atomic.Int64) {
	start := ck.Now()
	// Stagger the boot flood across the first interval.
	ck.Sleep(time.Duration(rng.Int63n(int64(cfg.Interval))))
	buf := make([]byte, 512)
	for ck.Since(start) < cfg.Sim {
		conn, err := dialer.Dial(nsp, "dk!nj/astro/registry!registry")
		if err != nil {
			errors.Add(1)
			ck.Sleep(cfg.Interval / 4)
			continue
		}
		n := 64 + rng.Intn(192)
		msg := make([]byte, n)
		rng.Read(msg)
		ok := false
		if _, err := conn.Write(msg); err == nil {
			got := buf[:0]
			for len(got) < n {
				k, err := conn.Read(buf[len(got):n])
				if k > 0 {
					got = buf[:len(got)+k]
				}
				if err != nil {
					break
				}
			}
			ok = len(got) == n && string(got) == string(msg)
		}
		conn.Close()
		if ok {
			calls.Add(1)
			bytes.Add(int64(n))
		} else {
			errors.Add(1)
		}
		// Jittered pause: mean Interval, spread ±50%.
		pause := cfg.Interval/2 + time.Duration(rng.Int63n(int64(cfg.Interval)))
		ck.Sleep(pause)
	}
}
