package storm

import (
	"testing"
	"time"
)

// TestRegistryStormCompletes boots the t=0 dial storm — no stagger,
// every dialer walks CS by symbolic name — and checks the merged
// connection-server books close: every query landed in exactly one
// outcome column, and the latency histogram saw all of them.
func TestRegistryStormCompletes(t *testing.T) {
	res, err := RunRegistry(Config{
		Machines: 40,
		Sim:      8 * time.Second,
		Seed:     5,
		Virtual:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machines != 40 {
		t.Errorf("machines = %d, want 40", res.Machines)
	}
	if res.Calls < int64(res.Machines) {
		t.Errorf("%d calls across %d machines: the storm barely rained\n%s",
			res.Calls, res.Machines, res)
	}
	if res.Bytes == 0 {
		t.Errorf("no bytes echoed\n%s", res)
	}
	if res.CSQueries == 0 {
		t.Fatalf("no CS queries: the storm did not dial by name\n%s", res)
	}
	if got := res.CSHits + res.CSWaits + res.CSMisses + res.CSErrors; got != res.CSQueries {
		t.Errorf("CS books do not balance: %d queries != %d hits + %d waits + %d misses + %d errors\n%s",
			res.CSQueries, res.CSHits, res.CSWaits, res.CSMisses, res.CSErrors, res)
	}
	if res.CSNegHits == 0 {
		t.Errorf("no negative-cache hits: the dead-name queries were not cached\n%s", res)
	}
	if res.CSLat.Count != res.CSQueries {
		t.Errorf("latency histogram saw %d queries, counters saw %d\n%s",
			res.CSLat.Count, res.CSQueries, res)
	}
}

// TestRegistryStormDeterminism pins the acceptance criterion: the
// registry storm is byte-deterministic per seed — calls, retries, CS
// counters, and the merged latency histogram all agree across runs —
// and a different seed moves the numbers.
func TestRegistryStormDeterminism(t *testing.T) {
	cfg := Config{Machines: 60, Sim: 4 * time.Second, Seed: 7, Virtual: true}
	r1, err := RunRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := r1.Wall, r2.Wall
	r1.Wall, r2.Wall = 0, 0
	if *r1 != *r2 {
		t.Errorf("same seed diverged:\nrun 1: %s\nrun 2: %s", r1, r2)
	}
	r1.Wall, r2.Wall = w1, w2

	cfg.Seed = 8
	r3, err := RunRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Bytes == r1.Bytes && r3.CSQueries == r1.CSQueries {
		t.Errorf("seed 7 and 8 agree byte for byte (%d bytes, %d queries): suspicious",
			r1.Bytes, r1.CSQueries)
	}
}
