package storm

import (
	"testing"
	"time"
)

// TestSmallStormCompletes boots a modest world on the virtual clock
// and checks the storm actually exercised it: every machine got
// through at least one verified registry call in the simulated window.
func TestSmallStormCompletes(t *testing.T) {
	res, err := Run(Config{
		Machines: 40,
		Sim:      20 * time.Second,
		Seed:     5,
		Virtual:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machines != 40 {
		t.Errorf("machines = %d, want 40", res.Machines)
	}
	if res.Calls < int64(res.Machines) {
		t.Errorf("%d calls across %d machines: the storm barely rained\n%s",
			res.Calls, res.Machines, res)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors on an unimpaired switch\n%s", res.Errors, res)
	}
	if res.Bytes == 0 {
		t.Errorf("no bytes echoed\n%s", res)
	}
	if res.Simulated != 20*time.Second {
		t.Errorf("simulated %v, want 20s", res.Simulated)
	}
}

// TestStormDeterminism is the storm-scale half of the same-seed
// guarantee: two runs of the same virtual world agree call for call
// and byte for byte, because the discrete-event scheduler serializes
// every machine's every decision identically.
func TestStormDeterminism(t *testing.T) {
	cfg := Config{Machines: 60, Sim: 15 * time.Second, Seed: 11, Virtual: true}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Calls != r2.Calls || r1.Errors != r2.Errors || r1.Bytes != r2.Bytes {
		t.Errorf("same seed diverged:\nrun 1: %s\nrun 2: %s", r1, r2)
	}

	// A different seed shifts pacing and payload sizes, so the byte
	// count moves: the identity above is the seed, not a constant.
	cfg.Seed = 12
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Bytes == r1.Bytes {
		t.Errorf("seed 11 and 12 echoed identical byte counts (%d): suspicious", r1.Bytes)
	}
}
