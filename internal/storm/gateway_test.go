package storm

import (
	"testing"
	"time"
)

// TestSmallGatewayStormCompletes drives a modest gateway storm and
// checks the multi-tenant machinery did the work: every tenant
// verified the shared file at least once, and the shared cache — not
// the backing tree — carried the fan-out.
func TestSmallGatewayStormCompletes(t *testing.T) {
	res, err := RunGateway(Config{
		Machines: 40,
		Sim:      20 * time.Second,
		Seed:     5,
		Virtual:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads < int64(res.Machines) {
		t.Errorf("%d reads across %d machines: the storm barely rained\n%s",
			res.Reads, res.Machines, res)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors on an unimpaired switch\n%s", res.Errors, res)
	}
	if res.Bytes != res.Reads*sharedSize {
		t.Errorf("bytes %d != reads %d * %d\n%s", res.Bytes, res.Reads, sharedSize, res)
	}
	if res.Conns < int64(res.Machines) {
		t.Errorf("gateway served %d conns for %d machines\n%s", res.Conns, res.Machines, res)
	}
	// The acceptance bar: a shared-read workload runs > 80% hits.
	if hr := res.HitRate(); hr <= 0.8 {
		t.Errorf("cache hit rate %.2f, want > 0.80\n%s", hr, res)
	}
}

// TestGatewayStormDeterminism pins the same-seed guarantee for the
// gateway scenario: two virtual runs agree read for read and — the
// stricter half — cache counter for cache counter, because the
// discrete-event scheduler serializes every tenant's every miss
// identically.
func TestGatewayStormDeterminism(t *testing.T) {
	cfg := Config{Machines: 40, Sim: 15 * time.Second, Seed: 11, Virtual: true}
	r1, err := RunGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Reads != r2.Reads || r1.Errors != r2.Errors || r1.Bytes != r2.Bytes ||
		r1.Conns != r2.Conns || r1.CacheHits != r2.CacheHits || r1.CacheMisses != r2.CacheMisses {
		t.Errorf("same seed diverged:\nrun 1: %s\nrun 2: %s", r1, r2)
	}

	// A different seed shifts pacing, so the tallies move: the
	// identity above is the seed, not a constant.
	cfg.Seed = 12
	r3, err := RunGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Reads == r1.Reads && r3.CacheHits == r1.CacheHits {
		t.Errorf("seed 11 and 12 produced identical tallies (%d reads, %d hits): suspicious",
			r1.Reads, r1.CacheHits)
	}
}
