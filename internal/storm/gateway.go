package storm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/medium"
	"repro/internal/mnt"
	"repro/internal/ns"
	"repro/internal/vclock"
)

// GatewayResult is what the gateway storm did: the import-side tallies
// plus the exporter's shared-cache counters, which are the point — a
// thousand tenants reading one file should cost the backing tree one
// fill per fragment.
type GatewayResult struct {
	Machines    int
	Reads       int64 // imports that fetched and verified the shared file
	Errors      int64 // dials refused or contents wrong
	Bytes       int64 // payload bytes fetched through the gateway
	Conns       int64 // connections the gateway served over its life
	CacheHits   int64
	CacheMisses int64
	Simulated   time.Duration
	Wall        time.Duration
}

// HitRate is the shared cache's hit fraction over the whole storm.
func (r *GatewayResult) HitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

func (r *GatewayResult) String() string {
	return fmt.Sprintf("gateway storm: %d machines, %d reads (%d errors), %d bytes, %d conns, cache %d/%d hits (%.1f%%), simulated %v in %v wall",
		r.Machines, r.Reads, r.Errors, r.Bytes, r.Conns,
		r.CacheHits, r.CacheHits+r.CacheMisses, 100*r.HitRate(),
		r.Simulated.Round(time.Millisecond), r.Wall.Round(time.Millisecond))
}

// sharedSize is the shared file every tenant fetches: 64 KiB, eight
// protocol fragments.
const sharedSize = 64 << 10

// RunGateway boots the world and drives the gateway storm: one
// exporter announces exportfs, every other machine repeatedly imports
// its /lib and reads the shared file through the multi-tenant server.
// On the virtual clock the run is deterministic per seed, cache
// counters included.
func RunGateway(cfg Config) (*GatewayResult, error) {
	cfg = cfg.withDefaults()
	res := &GatewayResult{Machines: cfg.Machines}
	wall := time.Now() //netvet:ignore realtime wall-clock half of the simulation report
	var err error
	if cfg.Virtual {
		v := vclock.NewVirtual()
		v.Run(func() { err = runGateway(v, cfg, res) })
	} else {
		err = runGateway(vclock.Real, cfg, res)
	}
	res.Wall = time.Since(wall) //netvet:ignore realtime wall-clock half of the simulation report
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runGateway(ck vclock.Clock, cfg Config, res *GatewayResult) error {
	w, err := core.NewWorldClock(ndbText(cfg.Machines), ck)
	if err != nil {
		return err
	}
	defer w.Close()
	w.AddDatakit(medium.Profile{
		Latency:   cfg.Latency,
		Bandwidth: cfg.Bandwidth,
		MTU:       2048,
		Seed:      cfg.Seed,
	})

	// The exporter: the shared file in its tree, exportfs announced.
	reg, err := w.NewMachine(core.MachineConfig{Name: "registry", Datakit: true}) //netvet:ignore unclosed-resource the world closes its machines
	if err != nil {
		return fmt.Errorf("storm: boot registry: %w", err)
	}
	payload := make([]byte, sharedSize)
	rand.New(rand.NewSource(cfg.Seed)).Read(payload)
	if err := reg.Root.MkdirAll("lib", 0775); err != nil {
		return err
	}
	if err := reg.Root.WriteFile("lib/shared", payload, 0444); err != nil {
		return err
	}
	if _, err := reg.ServeExportfs("dk!*!exportfs"); err != nil {
		return fmt.Errorf("storm: announce exportfs: %w", err)
	}

	machines := make([]*core.Machine, cfg.Machines)
	for i := range machines {
		m, err := w.NewMachine(core.MachineConfig{Name: machineName(i), Datakit: true})
		if err != nil {
			return fmt.Errorf("storm: boot %s: %w", machineName(i), err)
		}
		machines[i] = m
	}

	var reads, errors, nbytes atomic.Int64
	wg := vclock.NewWaitGroup(ck)
	for i, m := range machines {
		wg.Add(1)
		m := m
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		ck.Go(func() {
			defer wg.Done()
			gatewayClient(ck, cfg, m, payload, rng, &reads, &errors, &nbytes)
		})
	}
	wg.Wait()
	res.Reads = reads.Load()
	res.Errors = errors.Load()
	res.Bytes = nbytes.Load()
	res.Simulated = cfg.Sim
	srv := reg.Exportfs()
	res.Conns = srv.Ninep().Conns.Load()
	res.CacheHits = srv.Cache().Hits.Load()
	res.CacheMisses = srv.Cache().Misses.Load()
	return nil
}

// gatewayClient is one tenant's life during the storm: stagger in,
// then import the exporter's /lib through the gateway, read the shared
// file with the windowed file driver, verify it, unmount, and pause.
func gatewayClient(ck vclock.Clock, cfg Config, m *core.Machine, payload []byte,
	rng *rand.Rand, reads, errors, nbytes *atomic.Int64) {
	start := ck.Now()
	ck.Sleep(time.Duration(rng.Int63n(int64(cfg.Interval))))
	for ck.Since(start) < cfg.Sim {
		cl, err := m.ImportConfig("dk!nj/astro/registry!exportfs", "/lib", "/n/gw",
			ns.MREPL, mnt.FileConfig())
		if err != nil {
			errors.Add(1)
			ck.Sleep(cfg.Interval / 4)
			continue
		}
		b, err := m.NS.ReadFile("/n/gw/shared")
		// Close explicitly: under the virtual clock nothing runs
		// finalizers, and a storm of leaked imports would pin the
		// gateway's connection table.
		cl.Close()
		if err == nil && bytes.Equal(b, payload) {
			reads.Add(1)
			nbytes.Add(int64(len(b)))
		} else {
			errors.Add(1)
		}
		pause := cfg.Interval/2 + time.Duration(rng.Int63n(int64(cfg.Interval)))
		ck.Sleep(pause)
	}
}
