package storm

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/medium"
	"repro/internal/ns"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// The registry dial storm is the connection-server half of the
// thousand-machine exercise: where Run staggers machines over the
// first interval, RunRegistry has every machine wake at t=0 and dial
// by symbolic name — "net!registry!registry" — so every call walks
// /net/cs. Each machine runs several dialers concurrently, which is
// what the sharded cache and the singleflight are for; the run ends
// by reading every machine's /net/cs/stats and merging the books, so
// the result carries CS hit rates and the query-latency histogram
// (p50/p99) alongside the call tallies.

// regDialers is how many concurrent dial loops each machine runs.
const regDialers = 3

// RegistryResult is what the dial storm did, including the merged
// connection-server books across every machine.
type RegistryResult struct {
	Machines int
	Calls    int64 // registry calls that completed, echo verified
	Retries  int64 // dials the switch refused (backlog full), backed off
	Errors   int64 // conversations cut short or verified wrong
	Bytes    int64 // payload bytes echoed back

	// The merged /net/cs accounts. CSQueries balances against the
	// outcome counters: hits + waits + misses + errors.
	CSQueries   int64
	CSHits      int64
	CSNegHits   int64
	CSWaits     int64
	CSMisses    int64
	CSErrors    int64
	CSEvictions int64
	CSLat       obs.HistSnap

	Simulated time.Duration
	Wall      time.Duration
}

// CSp50 and CSp99 are the merged query-latency quantiles.
func (r *RegistryResult) CSp50() time.Duration { return r.CSLat.Quantile(0.50) }
func (r *RegistryResult) CSp99() time.Duration { return r.CSLat.Quantile(0.99) }

func (r *RegistryResult) String() string {
	return fmt.Sprintf("registry storm: %d machines, %d calls (%d retries, %d errors), %d bytes echoed; cs %d queries (%d hits, %d neg, %d waits, %d misses, %d errors, %d evictions) p50 %v p99 %v, simulated %v in %v wall",
		r.Machines, r.Calls, r.Retries, r.Errors, r.Bytes,
		r.CSQueries, r.CSHits, r.CSNegHits, r.CSWaits, r.CSMisses, r.CSErrors,
		r.CSEvictions, r.CSp50(), r.CSp99(),
		r.Simulated.Round(time.Millisecond), r.Wall.Round(time.Millisecond))
}

// RunRegistry boots the world and drives the dial storm to
// completion. On the virtual clock the run — counters, histogram,
// and all — is deterministic per seed.
func RunRegistry(cfg Config) (*RegistryResult, error) {
	cfg = cfg.withDefaults()
	res := &RegistryResult{Machines: cfg.Machines}
	wall := time.Now() //netvet:ignore realtime wall-clock half of the simulation report
	var err error
	if cfg.Virtual {
		v := vclock.NewVirtual()
		v.Run(func() { err = runRegistry(v, cfg, res) })
	} else {
		err = runRegistry(vclock.Real, cfg, res)
	}
	res.Wall = time.Since(wall) //netvet:ignore realtime wall-clock half of the simulation report
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runRegistry(ck vclock.Clock, cfg Config, res *RegistryResult) error {
	w, err := core.NewWorldClock(ndbText(cfg.Machines), ck)
	if err != nil {
		return err
	}
	defer w.Close()
	w.AddDatakit(medium.Profile{
		Latency:   cfg.Latency,
		Bandwidth: cfg.Bandwidth,
		MTU:       2048,
		Seed:      cfg.Seed,
	})

	reg, err := w.NewMachine(core.MachineConfig{Name: "registry", Datakit: true}) //netvet:ignore unclosed-resource the world closes its machines
	if err != nil {
		return fmt.Errorf("storm: boot registry: %w", err)
	}
	if _, err := reg.ServeEcho("dk!*!registry"); err != nil {
		return fmt.Errorf("storm: announce registry: %w", err)
	}

	machines := make([]*core.Machine, cfg.Machines)
	for i := range machines {
		m, err := w.NewMachine(core.MachineConfig{Name: machineName(i), Datakit: true})
		if err != nil {
			return fmt.Errorf("storm: boot %s: %w", machineName(i), err)
		}
		machines[i] = m
	}

	var calls, retries, errors, bytes atomic.Int64
	wg := vclock.NewWaitGroup(ck)
	for i, m := range machines {
		for d := 0; d < regDialers; d++ {
			wg.Add(1)
			m := m
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919 + int64(d)*104729))
			ck.Go(func() {
				defer wg.Done()
				registryClient(ck, cfg, m.NS, rng, &calls, &retries, &errors, &bytes)
			})
		}
	}
	wg.Wait()

	res.Calls = calls.Load()
	res.Retries = retries.Load()
	res.Errors = errors.Load()
	res.Bytes = bytes.Load()
	res.Simulated = cfg.Sim

	// Close the books: every machine's /net/cs/stats, merged. The
	// registry's own CS answered its announce, so it counts too.
	for _, m := range append([]*core.Machine{reg}, machines...) {
		text, err := readFileText(m.NS, "/net/cs/stats")
		if err != nil {
			return fmt.Errorf("storm: read %s cs stats: %w", m.Name, err)
		}
		st := obs.ParseStats(text)
		res.CSQueries += st["queries"]
		res.CSHits += st["cache-hits"]
		res.CSNegHits += st["neg-hits"]
		res.CSWaits += st["singleflight-waits"]
		res.CSMisses += st["misses"]
		res.CSErrors += st["errors"]
		res.CSEvictions += st["evictions"]
		lat := obs.ParseHistSnap(text, "lat")
		res.CSLat.Merge(lat)
	}
	return nil
}

// registryClient is one dial loop: no stagger — the whole building
// dials at once — then call, verify the echo, pause, repeat. Most
// dials go by name through CS; a few per loop ask for a machine that
// does not exist, exercising the negative cache the way fat-fingered
// boot scripts do.
func registryClient(ck vclock.Clock, cfg Config, nsp *ns.Namespace, rng *rand.Rand,
	calls, retries, errors, bytes *atomic.Int64) {
	start := ck.Now()
	buf := make([]byte, 512)
	// Refused dials (the switch's accept backlog is finite, and the
	// whole building dials at t=0) back off with jitter, doubling up
	// to the call interval — lockstep retries would just re-collide.
	backoff := 4 * time.Millisecond
	for ck.Since(start) < cfg.Sim {
		if rng.Intn(16) == 0 {
			// A dead name: CS answers from the negative cache after
			// the first walk.
			if _, err := ndbQuery(nsp, "net!no-such-machine!registry"); err == nil {
				errors.Add(1) // should not resolve
			}
		}
		conn, err := dialer.Dial(nsp, "net!registry!registry")
		if err != nil {
			retries.Add(1)
			ck.Sleep(backoff/2 + time.Duration(rng.Int63n(int64(backoff))))
			if backoff < cfg.Interval {
				backoff *= 2
			}
			continue
		}
		backoff = 4 * time.Millisecond
		n := 64 + rng.Intn(192)
		msg := make([]byte, n)
		rng.Read(msg)
		ok := false
		if _, err := conn.Write(msg); err == nil {
			got := buf[:0]
			for len(got) < n {
				k, err := conn.Read(buf[len(got):n])
				if k > 0 {
					got = buf[:len(got)+k]
				}
				if err != nil {
					break
				}
			}
			ok = len(got) == n && string(got) == string(msg)
		}
		conn.Close()
		if ok {
			calls.Add(1)
			bytes.Add(int64(n))
		} else {
			errors.Add(1)
		}
		pause := cfg.Interval/2 + time.Duration(rng.Int63n(int64(cfg.Interval)))
		ck.Sleep(pause)
	}
}

// ndbQuery runs one translation through the machine's /net/cs/cs.
func ndbQuery(nsp *ns.Namespace, q string) ([]string, error) {
	fd, err := nsp.Open("/net/cs/cs", vfs.ORDWR)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	if _, err := fd.WriteString(q); err != nil {
		return nil, err
	}
	var lines []string
	buf := make([]byte, 512)
	for {
		n, err := fd.ReadAt(buf, 0)
		if n == 0 || err != nil {
			return lines, nil
		}
		lines = append(lines, string(buf[:n]))
	}
}

// readFileText slurps one file out of a namespace.
func readFileText(nsp *ns.Namespace, path string) (string, error) {
	fd, err := nsp.Open(path, vfs.OREAD)
	if err != nil {
		return "", err
	}
	defer fd.Close()
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, err := fd.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return string(out), nil
		}
		if err != nil {
			return "", err
		}
		if n == 0 {
			return string(out), nil
		}
	}
}
