package table1

import (
	"sort"
	"strings"
	"testing"
	"time"
)

// TestShapeMatchesPaper is the headline reproduction check: the
// relative ordering of Table 1's rows must match the paper, in both
// columns, on ideal media (which preserve protocol cost ratios).
func TestShapeMatchesPaper(t *testing.T) {
	res := Run(FastConfig())
	rows := map[string]Row{}
	for _, r := range res.Rows {
		if r.Err != nil {
			t.Fatalf("%s failed: %v", r.Name, r.Err)
		}
		rows[r.Name] = r
	}
	for _, name := range []string{"pipes", "IL/ether", "URP/Datakit", "Cyclone"} {
		if _, ok := rows[name]; !ok {
			t.Fatalf("missing row %q", name)
		}
	}
	// Throughput on ideal media: the engine-less paths (pipes,
	// Cyclone — both are bare framed channels here) must beat the
	// paths that run a protocol engine (IL, URP). Pipes vs Cyclone is
	// only distinguishable on calibrated media (netsim -table1),
	// where the fiber's bandwidth separates them.
	for _, fast := range []string{"pipes", "Cyclone"} {
		for _, slow := range []string{"IL/ether", "URP/Datakit"} {
			if !(rows[fast].Throughput > rows[slow].Throughput) {
				t.Errorf("%s (%v) not faster than %s (%v)",
					fast, rows[fast].Throughput, slow, rows[slow].Throughput)
			}
		}
	}
	// Latency: pipes and Cyclone (no protocol engine) beat IL and URP.
	if !(rows["pipes"].Latency < rows["IL/ether"].Latency) {
		t.Errorf("pipes latency (%v) not below IL/ether (%v)",
			rows["pipes"].Latency, rows["IL/ether"].Latency)
	}
	if !(rows["Cyclone"].Latency < rows["IL/ether"].Latency) {
		t.Errorf("Cyclone latency (%v) not below IL/ether (%v)",
			rows["Cyclone"].Latency, rows["IL/ether"].Latency)
	}
}

func TestFormatLayout(t *testing.T) {
	res := Result{Rows: []Row{
		{Name: "pipes", Throughput: 8.15, Latency: 0.255},
		{Name: "IL/ether", Throughput: 1.02, Latency: 1.42},
	}}
	out := res.Format()
	if !strings.Contains(out, "Table 1") ||
		!strings.Contains(out, "MBytes/sec") ||
		!strings.Contains(out, "millisec") {
		t.Errorf("format header:\n%s", out)
	}
	if !strings.Contains(out, "8.15") || !strings.Contains(out, "1.420") {
		t.Errorf("format values:\n%s", out)
	}
	// Error rows render.
	res.Rows = append(res.Rows, Row{Name: "broken", Err: errFake{}})
	if !strings.Contains(res.Format(), "broken") {
		t.Error("error row missing")
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

func TestBuildWorldPaths(t *testing.T) {
	w, paths, err := BuildWorld(FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var names []string
	for _, p := range paths {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	want := []string{"Cyclone", "IL/ether", "URP/Datakit", "pipes"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("paths %v", names)
	}
}

func TestMeasureLatencySanity(t *testing.T) {
	p := pipePath()
	lat, err := MeasureLatency(p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || lat > time.Second {
		t.Errorf("pipe latency %v", lat)
	}
}

func TestMeasureThroughputSanity(t *testing.T) {
	p := pipePath()
	tp, err := MeasureThroughput(p, 16*1024, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 0 {
		t.Errorf("pipe throughput %v", tp)
	}
}
