// Package table1 regenerates Table 1 of the paper (§8): latency and
// throughput of reading and writing bytes between two processes, for
// each communication path:
//
//	test          throughput   latency
//	              MBytes/sec   millisec
//	pipes            8.15        .255
//	IL/ether         1.02        1.42
//	URP/Datakit      0.22        1.75
//	Cyclone          3.2         0.375
//
// "The latency is measured as the round trip time for a byte sent from
// one process to another and back again. Throughput is measured using
// 16k writes from one process to another."
//
// Our substrate is a simulator, not 25 MHz MIPS hardware, so absolute
// numbers differ; the media are calibrated (core.CalibratedProfiles)
// so the *shape* holds: pipes fastest, then Cyclone, then IL/ether,
// with URP/Datakit slowest in throughput and the same ordering
// reversed for latency.
package table1

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/ns"
	"repro/internal/streams"
)

// Config sets workload sizes.
type Config struct {
	Profiles core.PaperProfiles
	// WriteSize is the throughput write size (the paper's 16k).
	WriteSize int
	// TotalBytes is how much to move when measuring throughput.
	TotalBytes int
	// Pings is how many 1-byte round trips to time.
	Pings int
}

// DefaultConfig measures on calibrated media with enough volume for
// stable numbers at simulated-medium speeds.
func DefaultConfig() Config {
	return Config{
		Profiles:   core.CalibratedProfiles(),
		WriteSize:  16 * 1024,
		TotalBytes: 512 * 1024,
		Pings:      50,
	}
}

// FastConfig measures code-path cost only (ideal media).
func FastConfig() Config {
	return Config{
		Profiles:   core.FastProfiles(),
		WriteSize:  16 * 1024,
		TotalBytes: 4 * 1024 * 1024,
		Pings:      500,
	}
}

// Row is one line of the table.
type Row struct {
	Name       string
	Throughput float64 // MBytes/sec
	Latency    float64 // milliseconds
	Err        error
}

// Result is the reproduced table.
type Result struct {
	Rows []Row
}

// Format renders the table in the paper's layout.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 - Performance\n")
	fmt.Fprintf(&b, "%-14s %11s %9s\n", "test", "throughput", "latency")
	fmt.Fprintf(&b, "%-14s %11s %9s\n", "", "MBytes/sec", "millisec")
	for _, row := range r.Rows {
		if row.Err != nil {
			fmt.Fprintf(&b, "%-14s %11s %9s (%v)\n", row.Name, "-", "-", row.Err)
			continue
		}
		fmt.Fprintf(&b, "%-14s %11.2f %9.3f\n", row.Name, row.Throughput, row.Latency)
	}
	return b.String()
}

// Path abstracts one measured communication path: a way to get an
// echoing connection and a sinking connection.
type Path struct {
	Name string
	// DialEcho returns a connection whose peer echoes everything.
	DialEcho func() (io.ReadWriteCloser, error)
	// DialSink returns a connection whose peer reads n bytes and
	// then writes one byte back.
	DialSink func(n int) (io.ReadWriteCloser, error)
}

// MeasureLatency times 1-byte round trips.
func MeasureLatency(p Path, pings int) (time.Duration, error) {
	conn, err := p.DialEcho()
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	buf := make([]byte, 16)
	// Warm up (ARP, handshake timers).
	conn.Write(buf[:1])
	if _, err := io.ReadFull(conn, buf[:1]); err != nil {
		return 0, err
	}
	//netvet:ignore realtime measures real wall-clock throughput by design
	start := time.Now()
	for range pings {
		if _, err := conn.Write(buf[:1]); err != nil {
			return 0, err
		}
		if _, err := io.ReadFull(conn, buf[:1]); err != nil {
			return 0, err
		}
	}
	//netvet:ignore realtime measures real wall-clock throughput by design
	return time.Since(start) / time.Duration(pings), nil
}

// MeasureThroughput times writeSize-byte writes of total bytes and the
// sink's final acknowledgement.
func MeasureThroughput(p Path, writeSize, total int) (float64, error) {
	conn, err := p.DialSink(total)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	payload := make([]byte, writeSize)
	//netvet:ignore realtime measures real wall-clock throughput by design
	start := time.Now()
	sent := 0
	for sent < total {
		n := total - sent
		if n > writeSize {
			n = writeSize
		}
		if _, err := conn.Write(payload[:n]); err != nil {
			return 0, err
		}
		sent += n
	}
	// The sink answers one byte when it has read everything.
	one := make([]byte, 1)
	if _, err := io.ReadFull(conn, one); err != nil {
		return 0, err
	}
	//netvet:ignore realtime measures real wall-clock throughput by design
	el := time.Since(start).Seconds()
	return float64(total) / el / 1e6, nil
}

// measure runs both measurements for a path.
func measure(p Path, cfg Config) Row {
	row := Row{Name: p.Name}
	tp, err := MeasureThroughput(p, cfg.WriteSize, cfg.TotalBytes)
	if err != nil {
		row.Err = err
		return row
	}
	lat, err := MeasureLatency(p, cfg.Pings)
	if err != nil {
		row.Err = err
		return row
	}
	row.Throughput = tp
	row.Latency = float64(lat.Nanoseconds()) / 1e6
	return row
}

// sinkHandler implements the bench sink service: the dial string's
// first delimited line carries the expected byte count.
func sinkHandler(nsp *ns.Namespace, conn *dialer.Conn) {
	// First read the ASCII count terminated by newline.
	hdr := make([]byte, 0, 32)
	one := make([]byte, 1)
	for len(hdr) < 31 {
		if _, err := conn.Read(one); err != nil {
			return
		}
		if one[0] == '\n' {
			break
		}
		hdr = append(hdr, one[0])
	}
	want, err := strconv.Atoi(string(hdr))
	if err != nil {
		return
	}
	buf := make([]byte, 64*1024)
	got := 0
	for got < want {
		n, err := conn.Read(buf)
		got += n
		if err != nil {
			return
		}
	}
	conn.Write([]byte{1})
}

func dialSink(nsp *ns.Namespace, dest string, n int) (io.ReadWriteCloser, error) {
	conn, err := dialer.Dial(nsp, dest)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write([]byte(strconv.Itoa(n) + "\n")); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// pipePath builds the "pipes" row: two processes connected by a
// kernel pipe, which in this kernel is a pair of cross-connected
// streams (§2.4: "asynchronous communications channels such as pipes
// ... are implemented using streams").
func pipePath() Path {
	mkPipe := func() (*streams.Stream, *streams.Stream) {
		var a, b *streams.Stream
		a = streams.New(1<<20, func(blk *streams.Block) { b.DeviceUp(blk) })
		b = streams.New(1<<20, func(blk *streams.Block) { a.DeviceUp(blk) })
		return a, b
	}
	return Path{
		Name: "pipes",
		DialEcho: func() (io.ReadWriteCloser, error) {
			a, b := mkPipe()
			go func() { // echo process
				buf := make([]byte, 64*1024)
				for {
					n, err := b.Read(buf)
					if err != nil || n == 0 {
						return
					}
					if _, err := b.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
			return streamConn{a, b}, nil
		},
		DialSink: func(total int) (io.ReadWriteCloser, error) {
			a, b := mkPipe()
			go func() { // sink process: drain, then acknowledge
				buf := make([]byte, 64*1024)
				got := 0
				for got < total {
					n, err := b.Read(buf)
					got += n
					if err != nil {
						return
					}
				}
				b.Write([]byte{1})
			}()
			return streamConn{a, b}, nil
		},
	}
}

// streamConn adapts a stream pair end to io.ReadWriteCloser.
type streamConn struct {
	s    *streams.Stream
	peer *streams.Stream
}

func (c streamConn) Read(p []byte) (int, error)  { return c.s.Read(p) }
func (c streamConn) Write(p []byte) (int, error) { return c.s.Write(p) }
func (c streamConn) Close() error {
	c.s.Close()
	c.peer.Close()
	return nil
}

// netPath builds a row measured across the world between two machines.
func netPath(name string, from *core.Machine, echoDest, sinkDest string) Path {
	return Path{
		Name: name,
		DialEcho: func() (io.ReadWriteCloser, error) {
			return dialer.Dial(from.NS, echoDest)
		},
		DialSink: func(n int) (io.ReadWriteCloser, error) {
			return dialSink(from.NS, sinkDest, n)
		},
	}
}

// BuildWorld boots the paper world with bench services (sink on every
// medium) started.
func BuildWorld(cfg Config) (*core.World, []Path, error) {
	w, err := core.PaperWorld(cfg.Profiles)
	if err != nil {
		return nil, nil, err
	}
	helix := w.Machine("helix")
	bootes := w.Machine("bootes")
	musca := w.Machine("musca")
	gnot := w.Machine("philw-gnot")

	// Sink services next to the existing echo services.
	for _, addr := range []string{"il!*!bench", "tcp!*!bench", "dk!*!bench"} {
		if _, err := helix.Serve(addr, sinkHandler); err != nil {
			w.Close()
			return nil, nil, err
		}
	}
	// Cyclone: echo and sink on the bootes end of the fiber; the
	// link carries one conversation at a time, so services attach
	// per measurement below via a shared announce.
	if _, err := bootes.Serve("cyc0!*!echo", func(nsp *ns.Namespace, conn *dialer.Conn) {
		buf := make([]byte, 64*1024)
		for {
			n, err := conn.Read(buf)
			if err != nil || n == 0 {
				return
			}
			if _, err := conn.Write(buf[:n]); err != nil {
				return
			}
		}
	}); err != nil {
		w.Close()
		return nil, nil, err
	}

	paths := []Path{
		pipePath(),
		netPath("IL/ether", musca, "il!helix!echo", "il!helix!bench"),
		netPath("URP/Datakit", gnot, "dk!nj/astro/helix!echo", "dk!nj/astro/helix!bench"),
		cyclonePath(helix),
	}
	return w, paths, nil
}

// cyclonePath measures the fiber. The link is a single conversation,
// so the sink protocol runs over the same echoing peer: the sink role
// is emulated by counting echoed bytes — the wire carries the same
// traffic in both cases, so throughput is measured as one-way payload
// over a full-duplex link, like the Cyclone row of the paper (the
// boards are full duplex).
func cyclonePath(helix *core.Machine) Path {
	dial := func() (io.ReadWriteCloser, error) {
		return dialer.Dial(helix.NS, "cyc0!bootes!echo")
	}
	return Path{
		Name:     "Cyclone",
		DialEcho: dial,
		DialSink: func(total int) (io.ReadWriteCloser, error) {
			conn, err := dial()
			if err != nil {
				return nil, err
			}
			return newEchoSink(conn, total), nil
		},
	}
}

// echoSink adapts an echoing peer into the sink contract: a background
// goroutine drains the echoes as they arrive (so neither direction of
// the link ever backs up) and the final "done" byte is delivered once
// all payload has come back.
type echoSink struct {
	conn io.ReadWriteCloser
	done chan error
}

func newEchoSink(conn io.ReadWriteCloser, want int) *echoSink {
	s := &echoSink{conn: conn, done: make(chan error, 1)}
	go func() {
		buf := make([]byte, 64*1024)
		got := 0
		for got < want {
			n, err := conn.Read(buf)
			got += n
			if err != nil {
				s.done <- err
				return
			}
		}
		s.done <- nil
	}()
	return s
}

func (s *echoSink) Write(p []byte) (int, error) { return s.conn.Write(p) }

// Read delivers the completion byte once the drain goroutine has seen
// every echoed byte.
func (s *echoSink) Read(p []byte) (int, error) {
	if err := <-s.done; err != nil {
		return 0, err
	}
	p[0] = 1
	return 1, nil
}

func (s *echoSink) Close() error { return s.conn.Close() }

// Run reproduces the table.
func Run(cfg Config) Result {
	w, paths, err := BuildWorld(cfg)
	if err != nil {
		return Result{Rows: []Row{{Name: "world", Err: err}}}
	}
	defer w.Close()
	var res Result
	for _, p := range paths {
		res.Rows = append(res.Rows, measure(p, cfg))
	}
	return res
}
