package medium

import (
	"bytes"
	"testing"
	"time"
)

func TestPipeOrderedDelivery(t *testing.T) {
	p := NewPipe(Profile{})
	defer p.Close()
	for i := range 100 {
		if err := p.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range 100 {
		m, err := p.Recv()
		if err != nil || m[0] != byte(i) {
			t.Fatalf("message %d: %v, %v", i, m, err)
		}
	}
}

func TestPipeOrderedDeliveryWithLatency(t *testing.T) {
	p := NewPipe(Profile{Latency: time.Millisecond})
	defer p.Close()
	for i := range 50 {
		p.Send([]byte{byte(i)})
	}
	for i := range 50 {
		m, err := p.Recv()
		if err != nil || m[0] != byte(i) {
			t.Fatalf("latency pipe message %d: %v, %v", i, m, err)
		}
	}
}

func TestLatencyApplied(t *testing.T) {
	p := NewPipe(Profile{Latency: 20 * time.Millisecond})
	defer p.Close()
	start := time.Now()
	p.Send([]byte("x"))
	if _, err := p.Recv(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Errorf("message arrived after %v, want ~20ms", el)
	}
}

func TestLatencyPipelines(t *testing.T) {
	// 10 messages at 20ms latency must take ~20ms total, not 200ms.
	p := NewPipe(Profile{Latency: 20 * time.Millisecond})
	defer p.Close()
	start := time.Now()
	for range 10 {
		p.Send([]byte("x"))
	}
	for range 10 {
		p.Recv()
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Errorf("10 messages took %v: latency is serializing", el)
	}
}

func TestBandwidthPacesSender(t *testing.T) {
	p := NewPipe(Profile{Bandwidth: 1 << 20}) // 1 MB/s
	defer p.Close()
	start := time.Now()
	for range 10 {
		p.Send(make([]byte, 10*1024)) // 100 KiB total -> ~100ms
	}
	if el := time.Since(start); el < 70*time.Millisecond {
		t.Errorf("100KB at 1MB/s paced in %v", el)
	}
}

func TestMTURejected(t *testing.T) {
	p := NewPipe(Profile{MTU: 100})
	defer p.Close()
	if err := p.Send(make([]byte, 101)); err != ErrTooLong {
		t.Errorf("over-MTU send = %v", err)
	}
	if err := p.Send(make([]byte, 100)); err != nil {
		t.Errorf("at-MTU send = %v", err)
	}
}

func TestLossDrops(t *testing.T) {
	p := NewPipe(Profile{Loss: 1.0, Seed: 3})
	defer p.Close()
	for range 20 {
		p.Send([]byte("gone"))
	}
	done := make(chan bool, 1)
	go func() {
		p.Recv()
		done <- true
	}()
	select {
	case <-done:
		t.Error("message survived loss=1.0")
	case <-time.After(50 * time.Millisecond):
	}
	p.Close()
}

func TestCloseUnblocksReceiver(t *testing.T) {
	p := NewPipe(Profile{})
	errs := make(chan error, 1)
	go func() {
		_, err := p.Recv()
		errs <- err
	}()
	time.Sleep(5 * time.Millisecond)
	p.Close()
	select {
	case err := <-errs:
		if err != ErrClosed {
			t.Errorf("receiver error %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("receiver not unblocked")
	}
	if err := p.Send([]byte("x")); err != ErrClosed {
		t.Errorf("send after close = %v", err)
	}
}

func TestRecvDrainsQueueAfterClose(t *testing.T) {
	p := NewPipe(Profile{})
	p.Send([]byte("still here"))
	p.Close()
	m, err := p.Recv()
	if err != nil || !bytes.Equal(m, []byte("still here")) {
		t.Errorf("drain after close: %q, %v", m, err)
	}
}

func TestDuplex(t *testing.T) {
	a, b := NewDuplex(Profile{})
	defer a.Close()
	a.Send([]byte("to b"))
	m, err := b.Recv()
	if err != nil || string(m) != "to b" {
		t.Fatalf("a->b: %q, %v", m, err)
	}
	b.Send([]byte("to a"))
	m, err = a.Recv()
	if err != nil || string(m) != "to a" {
		t.Fatalf("b->a: %q, %v", m, err)
	}
	if a.MTU() != 0 {
		t.Errorf("unlimited MTU = %d", a.MTU())
	}
}

func TestSleepUntilPrecision(t *testing.T) {
	for _, d := range []time.Duration{100 * time.Microsecond, 1 * time.Millisecond, 5 * time.Millisecond} {
		target := time.Now().Add(d)
		SleepUntil(target)
		over := time.Since(target)
		if over < 0 {
			t.Errorf("woke %v early for %v", -over, d)
		}
		if over > 2*time.Millisecond {
			t.Errorf("woke %v late for %v", over, d)
		}
	}
	// Past deadlines return immediately.
	start := time.Now()
	SleepUntil(start.Add(-time.Second))
	if time.Since(start) > time.Millisecond {
		t.Error("past deadline slept")
	}
}
