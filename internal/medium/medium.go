// Package medium provides the paced, lossy, unidirectional message
// pipe used to simulate point-to-point media: Datakit circuit legs and
// Cyclone fibers. (The Ethernet has its own broadcast-domain simulator
// in package ether.) A Profile calibrates latency, bandwidth, maximum
// transfer unit, and loss so benchmarks can reproduce the relative
// speeds of the paper's media; the zero Profile delivers synchronously
// at memory speed for tests.
//
// All waiting goes through the profile's vclock.Clock, so a pipe built
// with a virtual clock simulates its latency and pacing in
// discrete-event time: an hour of WAN traffic replays in wall-clock
// milliseconds, deterministically.
package medium

import (
	"errors"
	"sync"
	"time"

	"repro/internal/vclock"
)

// SleepUntil parks until t on the real clock. Kept for callers outside
// the clock-threaded engines; code holding a Profile should use its
// clock instead.
func SleepUntil(t time.Time) { vclock.Real.SleepUntil(t) }

// Profile characterizes one direction of a link.
type Profile struct {
	Latency   time.Duration // propagation delay per message
	Bandwidth int64         // bytes/second; 0 = unlimited
	MTU       int           // largest message; 0 = unlimited
	Loss      float64       // drop probability in [0,1)
	Seed      int64
	// Impair extends Loss into the full fault model: duplication,
	// reordering, corruption, jitter, bursty loss, and scheduled
	// partitions, all replayable from Seed. See Impairment.
	Impair Impairment
	// Clock schedules every sleep and timestamp; nil means the real
	// clock. A vclock.Virtual here turns the pipe into a
	// discrete-event component.
	Clock vclock.Clock
}

// Errors.
var (
	ErrClosed  = errors.New("medium: pipe closed")
	ErrTooLong = errors.New("medium: message exceeds MTU")
)

// Pipe is a unidirectional ordered message pipe with medium effects.
type Pipe struct {
	profile Profile
	ck      vclock.Clock
	im      *Impairer // nil on an unimpaired, lossless link

	mu    sync.Mutex
	queue *vclock.Mailbox[[]byte]
	sched *vclock.Mailbox[timedMsg]
	// nextFree models the serialization point of the wire: the time
	// at which the transmitter becomes free.
	nextFree time.Time
}

type timedMsg struct {
	msg []byte
	at  time.Time
}

// NewPipe creates a pipe with the given profile.
func NewPipe(p Profile) *Pipe {
	ck := vclock.Or(p.Clock)
	pipe := &Pipe{
		profile: p,
		ck:      ck,
		queue:   vclock.NewMailbox[[]byte](ck, 1024),
	}
	if p.Impair.Armed(p.Loss) {
		pipe.im = NewImpairer(p.Seed+1, p.Loss, p.Impair)
	}
	if p.Latency > 0 || p.Impair.Jitter > 0 {
		// An ordered deliverer: messages arrive Latency (plus any
		// jitter) after transmission, pipelined (many in flight).
		pipe.sched = vclock.NewMailbox[timedMsg](ck, 1024)
		ck.Go(pipe.deliverer)
	}
	return pipe
}

func (p *Pipe) deliverer() {
	for {
		tm, ok := p.sched.Recv()
		if !ok {
			return
		}
		p.ck.SleepUntil(tm.at)
		if p.queue.Send(tm.msg) != nil {
			return
		}
	}
}

// transmitTime is the serialization time of n bytes at bw bytes/s:
// how long the transmitter stays busy before the line is free again.
func transmitTime(n int, bw int64) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(int64(n) * int64(time.Second) / bw)
}

// Send queues one message, applying MTU, bandwidth pacing, the
// impairment model, and latency. Pacing sleeps the sender, modeling
// the transmitter staying busy for size/bandwidth (dropped messages
// still occupy wire time); propagation latency is applied by the
// deliverer without blocking the sender, so throughput pipelines.
func (p *Pipe) Send(msg []byte) error { return p.send(msg, false) }

// SendOwned is Send for a buffer whose ownership the caller hands
// over: the unimpaired path queues msg itself, skipping the defensive
// wire copy. The caller must not touch msg afterwards.
//
//netvet:owns msg
func (p *Pipe) SendOwned(msg []byte) error { return p.send(msg, true) }

func (p *Pipe) send(msg []byte, owned bool) error {
	prof := p.profile
	if prof.MTU > 0 && len(msg) > prof.MTU {
		return ErrTooLong
	}
	if p.queue.Closed() {
		return ErrClosed
	}
	if prof.Bandwidth > 0 {
		d := transmitTime(len(msg), prof.Bandwidth)
		p.mu.Lock()
		now := p.ck.Now()
		if p.nextFree.Before(now) {
			p.nextFree = now
		}
		p.nextFree = p.nextFree.Add(d)
		free := p.nextFree
		p.mu.Unlock()
		p.ck.SleepUntil(free)
	}
	if p.im != nil {
		// The impairment path must copy even an owned buffer: the
		// impairer duplicates and corrupts wire copies independently,
		// so each delivery needs bytes of its own.
		for _, e := range p.im.Apply(msg) {
			if err := p.emit(e.Data, e.Delay); err != nil {
				return err
			}
		}
		return nil
	}
	if !owned {
		msg = append([]byte(nil), msg...)
	}
	return p.emit(msg, 0)
}

// emit puts one wire copy on the delivery path. Mailbox sends fail with
// ErrClosed once the pipe is closed, so Send after Close returns
// ErrClosed deterministically — even mid-impairment.
func (p *Pipe) emit(msg []byte, extra time.Duration) error {
	if p.sched != nil {
		if p.sched.Send(timedMsg{msg: msg, at: p.ck.Now().Add(p.profile.Latency + extra)}) != nil {
			return ErrClosed
		}
		return nil
	}
	if p.queue.Send(msg) != nil {
		return ErrClosed
	}
	return nil
}

// Schedule returns the pipe's recorded impairment decisions (requires
// Profile.Impair.Record); nil on an unimpaired pipe.
func (p *Pipe) Schedule() []Decision {
	if p.im == nil {
		return nil
	}
	return p.im.Schedule()
}

// ImpairCounts returns the pipe's impairment counters; zero on an
// unimpaired pipe.
func (p *Pipe) ImpairCounts() Counts {
	if p.im == nil {
		return Counts{}
	}
	return p.im.Counts()
}

// Recv blocks for the next message. After Close it drains what was
// already delivered, then fails.
func (p *Pipe) Recv() ([]byte, error) {
	m, ok := p.queue.Recv()
	if !ok {
		return nil, ErrClosed
	}
	return m, nil
}

// Close tears the pipe down; blocked receivers fail once the delivered
// backlog drains.
func (p *Pipe) Close() {
	if p.sched != nil {
		p.sched.Close()
	}
	p.queue.Close()
}

// Duplex is a bidirectional message link built from two pipes.
type Duplex struct {
	tx *Pipe
	rx *Pipe
}

// NewDuplex returns the two ends of a link, each with profile p.
func NewDuplex(p Profile) (*Duplex, *Duplex) {
	ab := NewPipe(p)
	ba := NewPipe(p)
	return &Duplex{tx: ab, rx: ba}, &Duplex{tx: ba, rx: ab}
}

// AssembleDuplex builds a Duplex from explicit pipes, for tests that
// need asymmetric link behavior (e.g. a direction that drops
// everything).
func AssembleDuplex(tx, rx *Pipe) *Duplex { return &Duplex{tx: tx, rx: rx} }

// Send transmits toward the peer end.
func (d *Duplex) Send(msg []byte) error { return d.tx.Send(msg) }

// SendOwned transmits a buffer whose ownership the caller hands over.
//
//netvet:owns msg
func (d *Duplex) SendOwned(msg []byte) error { return d.tx.SendOwned(msg) }

// Recv receives from the peer end.
func (d *Duplex) Recv() ([]byte, error) { return d.rx.Recv() }

// Close closes both directions.
func (d *Duplex) Close() {
	d.tx.Close()
	d.rx.Close()
}

// MTU reports the link MTU (0 = unlimited).
func (d *Duplex) MTU() int { return d.tx.profile.MTU }

// Clock returns the clock the link waits on.
func (d *Duplex) Clock() vclock.Clock { return d.tx.ck }

// ImpairCounts sums the impairment counters of both directions of the
// link (tx and rx are the two pipes of the circuit, so either end
// reports the whole link).
func (d *Duplex) ImpairCounts() Counts {
	c := d.tx.ImpairCounts()
	c.Add(d.rx.ImpairCounts())
	return c
}
