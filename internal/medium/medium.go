// Package medium provides the paced, lossy, unidirectional message
// pipe used to simulate point-to-point media: Datakit circuit legs and
// Cyclone fibers. (The Ethernet has its own broadcast-domain simulator
// in package ether.) A Profile calibrates latency, bandwidth, maximum
// transfer unit, and loss so benchmarks can reproduce the relative
// speeds of the paper's media; the zero Profile delivers synchronously
// at memory speed for tests.
package medium

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// SleepUntil waits until t with sub-millisecond precision: it sleeps
// coarsely while far away and spins (yielding) for the final stretch,
// because OS timers quantize at ~1ms — far coarser than the media
// being simulated (an Ethernet frame serializes in ~1.2ms, a Cyclone
// frame in microseconds).
func SleepUntil(t time.Time) {
	for {
		d := time.Until(t)
		if d <= 0 {
			return
		}
		if d > 3*time.Millisecond {
			time.Sleep(d - 2*time.Millisecond)
			continue
		}
		for time.Now().Before(t) {
			runtime.Gosched()
		}
		return
	}
}

// Profile characterizes one direction of a link.
type Profile struct {
	Latency   time.Duration // propagation delay per message
	Bandwidth int64         // bytes/second; 0 = unlimited
	MTU       int           // largest message; 0 = unlimited
	Loss      float64       // drop probability in [0,1)
	Seed      int64
}

// Errors.
var (
	ErrClosed  = errors.New("medium: pipe closed")
	ErrTooLong = errors.New("medium: message exceeds MTU")
)

// Pipe is a unidirectional ordered message pipe with medium effects.
type Pipe struct {
	profile Profile

	mu     sync.Mutex
	rng    *rand.Rand
	queue  chan []byte
	sched  chan timedMsg
	closed chan struct{}
	once   sync.Once
	// nextFree models the serialization point of the wire: the time
	// at which the transmitter becomes free.
	nextFree time.Time
}

type timedMsg struct {
	msg []byte
	at  time.Time
}

// NewPipe creates a pipe with the given profile.
func NewPipe(p Profile) *Pipe {
	pipe := &Pipe{
		profile: p,
		rng:     rand.New(rand.NewSource(p.Seed + 1)),
		queue:   make(chan []byte, 1024),
		closed:  make(chan struct{}),
	}
	if p.Latency > 0 {
		// An ordered deliverer: messages arrive exactly Latency
		// after transmission, pipelined (many can be in flight).
		pipe.sched = make(chan timedMsg, 1024)
		go pipe.deliverer()
	}
	return pipe
}

func (p *Pipe) deliverer() {
	for {
		select {
		case <-p.closed:
			return
		case tm := <-p.sched:
			SleepUntil(tm.at)
			select {
			case p.queue <- tm.msg:
			case <-p.closed:
				return
			}
		}
	}
}

// Send queues one message, applying MTU, loss, bandwidth pacing, and
// latency. Pacing sleeps the sender, modeling the transmitter staying
// busy for size/bandwidth; propagation latency is applied by the
// deliverer without blocking the sender, so throughput pipelines.
func (p *Pipe) Send(msg []byte) error {
	prof := p.profile
	if prof.MTU > 0 && len(msg) > prof.MTU {
		return ErrTooLong
	}
	select {
	case <-p.closed:
		return ErrClosed
	default:
	}
	if prof.Bandwidth > 0 {
		d := time.Duration(int64(len(msg)) * int64(time.Second) / prof.Bandwidth)
		p.mu.Lock()
		now := time.Now()
		if p.nextFree.Before(now) {
			p.nextFree = now
		}
		p.nextFree = p.nextFree.Add(d)
		free := p.nextFree
		p.mu.Unlock()
		SleepUntil(free)
	}
	if prof.Loss > 0 {
		p.mu.Lock()
		drop := p.rng.Float64() < prof.Loss
		p.mu.Unlock()
		if drop {
			return nil // vanished on the wire
		}
	}
	cp := append([]byte(nil), msg...)
	if prof.Latency > 0 {
		select {
		case p.sched <- timedMsg{msg: cp, at: time.Now().Add(prof.Latency)}:
		case <-p.closed:
			return ErrClosed
		}
		return nil
	}
	select {
	case p.queue <- cp:
	case <-p.closed:
		return ErrClosed
	}
	return nil
}

// Recv blocks for the next message.
func (p *Pipe) Recv() ([]byte, error) {
	select {
	case m := <-p.queue:
		return m, nil
	default:
	}
	select {
	case m := <-p.queue:
		return m, nil
	case <-p.closed:
		select {
		case m := <-p.queue:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Close tears the pipe down; blocked receivers fail.
func (p *Pipe) Close() {
	p.once.Do(func() { close(p.closed) })
}

// Duplex is a bidirectional message link built from two pipes.
type Duplex struct {
	tx *Pipe
	rx *Pipe
}

// NewDuplex returns the two ends of a link, each with profile p.
func NewDuplex(p Profile) (*Duplex, *Duplex) {
	ab := NewPipe(p)
	ba := NewPipe(p)
	return &Duplex{tx: ab, rx: ba}, &Duplex{tx: ba, rx: ab}
}

// AssembleDuplex builds a Duplex from explicit pipes, for tests that
// need asymmetric link behavior (e.g. a direction that drops
// everything).
func AssembleDuplex(tx, rx *Pipe) *Duplex { return &Duplex{tx: tx, rx: rx} }

// Send transmits toward the peer end.
func (d *Duplex) Send(msg []byte) error { return d.tx.Send(msg) }

// Recv receives from the peer end.
func (d *Duplex) Recv() ([]byte, error) { return d.rx.Recv() }

// Close closes both directions.
func (d *Duplex) Close() {
	d.tx.Close()
	d.rx.Close()
}

// MTU reports the link MTU (0 = unlimited).
func (d *Duplex) MTU() int { return d.tx.profile.MTU }
