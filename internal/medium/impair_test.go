package medium

import (
	"bytes"
	"encoding/binary"
	"math/bits"
	"reflect"
	"sync"
	"testing"
	"time"
)

// nastyImpairment arms every fault class at once.
func nastyImpairment() Impairment {
	return Impairment{
		Duplicate:    0.10,
		Reorder:      0.15,
		ReorderDepth: 3,
		Corrupt:      0.10,
		CorruptBits:  2,
		BurstP:       0.05,
		BurstR:       0.30,
		BurstLoss:    0.9,
		Partitions:   []Window{{From: 40, To: 60}, {From: 150, To: 170}},
		Record:       true,
	}
}

func seqMsg(i int) []byte {
	b := make([]byte, 32)
	binary.BigEndian.PutUint16(b, uint16(i))
	for j := 2; j < len(b); j++ {
		b[j] = byte(i * j)
	}
	return b
}

// TestImpairerScheduleReplays is the acceptance-criterion test: two
// impairers with the same seed fed the same traffic must produce the
// identical packet schedule — every drop, duplicate, bit flip, hold,
// and jitter at the same wire positions with the same values.
func TestImpairerScheduleReplays(t *testing.T) {
	run := func() ([]Decision, []Emission, Counts) {
		im := NewImpairer(42, 0.08, nastyImpairment())
		var all []Emission
		for i := range 300 {
			all = append(all, im.Apply(seqMsg(i))...)
		}
		return im.Schedule(), all, im.Counts()
	}
	s1, e1, c1 := run()
	s2, e2, c2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("schedules differ between identically-seeded runs:\n%v\nvs\n%v", s1, s2)
	}
	if len(s1) != 300 {
		t.Fatalf("recorded %d decisions, want 300", len(s1))
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("emission sequences differ between identically-seeded runs")
	}
	if c1 != c2 {
		t.Fatalf("counts differ: %v vs %v", c1, c2)
	}
	// A different seed must not replay the same schedule.
	im3 := NewImpairer(43, 0.08, nastyImpairment())
	for i := range 300 {
		im3.Apply(seqMsg(i))
	}
	if reflect.DeepEqual(s1, im3.Schedule()) {
		t.Fatal("different seeds produced identical schedules")
	}
	// The nasty profile must actually have exercised every fault class.
	if c1.Dropped == 0 || c1.Duplicated == 0 || c1.Corrupted == 0 || c1.Held == 0 {
		t.Fatalf("fault classes unexercised: %v", c1)
	}
}

func TestImpairerPartitionDropsAndHeals(t *testing.T) {
	im := NewImpairer(1, 0, Impairment{Partitions: []Window{{From: 10, To: 20}}, Record: true})
	for i := range 30 {
		im.Apply(seqMsg(i))
	}
	for _, d := range im.Schedule() {
		in := d.Index >= 10 && d.Index < 20
		if in && (!d.Drop || d.Reason != "partition") {
			t.Errorf("decision %v: want partition drop", d)
		}
		if !in && d.Drop {
			t.Errorf("decision %v: dropped outside the partition", d)
		}
	}
}

func TestImpairerDuplicateEmitsTwoCopies(t *testing.T) {
	im := NewImpairer(7, 0, Impairment{Duplicate: 1})
	out := im.Apply([]byte("twice"))
	if len(out) != 2 || !bytes.Equal(out[0].Data, out[1].Data) || string(out[0].Data) != "twice" {
		t.Fatalf("duplicate emission = %v", out)
	}
	// The two copies must not alias: corrupting one later (e.g. in a
	// downstream queue) must not affect the other.
	out[0].Data[0] ^= 0xff
	if bytes.Equal(out[0].Data, out[1].Data) {
		t.Fatal("duplicate copies alias the same backing array")
	}
}

func TestImpairerCorruptionFlipsBitsInCopy(t *testing.T) {
	orig := seqMsg(9)
	ref := append([]byte(nil), orig...)
	im := NewImpairer(11, 0, Impairment{Corrupt: 1, CorruptBits: 2, Record: true})
	out := im.Apply(orig)
	if len(out) != 1 {
		t.Fatalf("want 1 emission, got %d", len(out))
	}
	if !bytes.Equal(orig, ref) {
		t.Fatal("Apply mutated the caller's buffer")
	}
	diff := 0
	for i := range orig {
		diff += bits.OnesCount8(orig[i] ^ out[0].Data[i])
	}
	d := im.Schedule()[0]
	if !d.Corrupt || len(d.Bits) != 2 {
		t.Fatalf("decision %v: want 2 recorded bit flips", d)
	}
	// Two draws can hit the same bit (flipping it back): accept 0 or 2
	// only when the recorded offsets collide.
	want := 2
	if d.Bits[0] == d.Bits[1] {
		want = 0
	}
	if diff != want {
		t.Fatalf("%d bits differ, want %d (bits %v)", diff, want, d.Bits)
	}
}

// TestImpairerReorderDisplacementBounded checks the reordering
// contract protocols with small sequence spaces depend on: a held
// message is overtaken by at most ReorderDepth distinct later
// messages.
func TestImpairerReorderDisplacementBounded(t *testing.T) {
	const depth = 3
	im := NewImpairer(5, 0, Impairment{Reorder: 0.4, ReorderDepth: depth})
	var order []int
	for i := range 400 {
		for _, e := range im.Apply(seqMsg(i)) {
			order = append(order, int(binary.BigEndian.Uint16(e.Data)))
		}
	}
	c := im.Counts()
	if c.Held == 0 {
		t.Fatal("no messages were held; reorder unexercised")
	}
	if int64(len(order)) != c.Emitted || c.Emitted+c.Dropped+c.Pending != c.Sent {
		t.Fatalf("conservation violated: %d emissions, counts %v", len(order), c)
	}
	misordered := 0
	for pos, seq := range order {
		overtakers := 0
		for _, earlier := range order[:pos] {
			if earlier > seq {
				overtakers++
			}
		}
		if overtakers > depth {
			t.Fatalf("message %d overtaken by %d later messages (depth %d)", seq, overtakers, depth)
		}
		if overtakers > 0 {
			misordered++
		}
	}
	if misordered == 0 {
		t.Fatal("no message was actually reordered")
	}
}

func TestImpairerHoldQueueBounded(t *testing.T) {
	// Reorder=1 wants to hold everything; the cap must keep the wire
	// flowing instead of swallowing it.
	im := NewImpairer(3, 0, Impairment{Reorder: 1, ReorderDepth: 2})
	emitted := 0
	for i := range 200 {
		emitted += len(im.Apply(seqMsg(i)))
	}
	c := im.Counts()
	if c.Pending > maxHeld {
		t.Fatalf("%d messages pending, cap is %d", c.Pending, maxHeld)
	}
	if emitted == 0 {
		t.Fatal("reorder=1 swallowed the wire entirely")
	}
}

func TestImpairerBurstLossClusters(t *testing.T) {
	im := NewImpairer(17, 0, Impairment{BurstP: 0.05, BurstR: 0.3, Record: true})
	for i := range 2000 {
		im.Apply(seqMsg(i))
	}
	bursts, maxRun, run := 0, 0, 0
	for _, d := range im.Schedule() {
		if d.Drop && d.Reason == "burst" {
			bursts++
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if bursts == 0 {
		t.Fatal("Gilbert–Elliott chain never dropped")
	}
	if maxRun < 2 {
		t.Errorf("burst losses never clustered (max run %d); not bursty", maxRun)
	}
}

// TestPipeImpairedDeliveryReplays asserts determinism end to end at
// the Pipe level: two pipes with the same seeded profile deliver
// byte-identical wire sequences.
func TestPipeImpairedDeliveryReplays(t *testing.T) {
	prof := Profile{Seed: 99, Loss: 0.05, Impair: nastyImpairment()}
	run := func() [][]byte {
		p := NewPipe(prof)
		defer p.Close()
		for i := range 300 {
			if err := p.Send(seqMsg(i)); err != nil {
				t.Fatal(err)
			}
		}
		n := p.ImpairCounts().Emitted
		out := make([][]byte, 0, n)
		for range n {
			m, err := p.Recv()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, m)
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("same-seed pipes delivered different wire sequences")
	}
}

// TestPipeSendCloseHammer is the partition/close race regression test:
// concurrent senders racing Close during an armed impairment window
// must see nil or ErrClosed — never a panic on a closed channel — and
// after Close every Send deterministically returns ErrClosed.
func TestPipeSendCloseHammer(t *testing.T) {
	for round := range 20 {
		p := NewPipe(Profile{
			Seed:    int64(round),
			Latency: 50 * time.Microsecond,
			Loss:    0.1,
			Impair: Impairment{
				Duplicate:  0.2,
				Reorder:    0.2,
				Corrupt:    0.2,
				Jitter:     20 * time.Microsecond,
				Partitions: []Window{{From: 5, To: 10}},
			},
		})
		var wg sync.WaitGroup
		for g := range 8 {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				msg := seqMsg(g)
				for i := 0; i < 200; i++ {
					if err := p.Send(msg); err != nil {
						if err != ErrClosed {
							t.Errorf("send error %v", err)
						}
						return
					}
				}
			}(g)
		}
		// Drain so senders don't just block on a full queue.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for {
				if _, err := p.Recv(); err != nil {
					return
				}
			}
		}()
		time.Sleep(time.Duration(round%4) * 100 * time.Microsecond)
		p.Close()
		wg.Wait()
		<-drained
		if err := p.Send(seqMsg(0)); err != ErrClosed {
			t.Fatalf("send after close = %v, want ErrClosed", err)
		}
	}
}

// TestPacingMath covers the serialization-time arithmetic and the
// nextFree accumulation for zero, calibrated, and jittered profiles.
func TestPacingMath(t *testing.T) {
	ttCases := []struct {
		name string
		n    int
		bw   int64
		want time.Duration
	}{
		{"zero-bandwidth", 1500, 0, 0},
		{"ether-frame-10Mbps", 1500, 1250000, 1200 * time.Microsecond},
		{"datakit-cell-2Mbps", 1031, 250000, 4124 * time.Microsecond},
		{"cyclone-block-3.5MBps", 16384, 3500000, 4681142 * time.Nanosecond},
		{"one-byte-1Bps", 1, 1, time.Second},
	}
	for _, c := range ttCases {
		if got := transmitTime(c.n, c.bw); got != c.want {
			t.Errorf("transmitTime(%s) = %v, want %v", c.name, got, c.want)
		}
	}

	// nextFree must advance by exactly the summed serialization times,
	// pacing the sender, for calibrated profiles with and without
	// jitter (jitter delays delivery, never transmission).
	nfCases := []struct {
		name  string
		prof  Profile
		sizes []int
	}{
		{"calibrated", Profile{Bandwidth: 1 << 20}, []int{10240, 10240, 5120}},
		{"jittered", Profile{Bandwidth: 1 << 20, Impair: Impairment{Jitter: time.Millisecond}}, []int{10240, 10240, 5120}},
	}
	for _, c := range nfCases {
		p := NewPipe(c.prof)
		start := time.Now()
		var want time.Duration
		for _, n := range c.sizes {
			if err := p.Send(make([]byte, n)); err != nil {
				t.Fatalf("%s: send: %v", c.name, err)
			}
			want += transmitTime(n, c.prof.Bandwidth)
		}
		p.mu.Lock()
		free := p.nextFree
		p.mu.Unlock()
		got := free.Sub(start)
		if got < want || got > want+30*time.Millisecond {
			t.Errorf("%s: nextFree advanced %v, want ~%v", c.name, got, want)
		}
		if el := time.Since(start); el < want-transmitTime(c.sizes[len(c.sizes)-1], c.prof.Bandwidth) {
			t.Errorf("%s: sender paced only %v for %v of wire time", c.name, el, want)
		}
		p.Close()
	}

	// MTU rejection across the same spread of profiles.
	mtuCases := []struct {
		name string
		prof Profile
	}{
		{"zero-with-mtu", Profile{MTU: 1500}},
		{"calibrated", Profile{MTU: 1500, Bandwidth: 1250000, Latency: 200 * time.Microsecond}},
		{"jittered", Profile{MTU: 1500, Impair: Impairment{Jitter: 100 * time.Microsecond}}},
	}
	for _, c := range mtuCases {
		p := NewPipe(c.prof)
		if err := p.Send(make([]byte, 1501)); err != ErrTooLong {
			t.Errorf("%s: over-MTU send = %v, want ErrTooLong", c.name, err)
		}
		if err := p.Send(make([]byte, 1500)); err != nil {
			t.Errorf("%s: at-MTU send = %v", c.name, err)
		}
		p.Close()
	}
	// Unlimited MTU accepts anything.
	p := NewPipe(Profile{})
	defer p.Close()
	if err := p.Send(make([]byte, 1<<20)); err != nil {
		t.Errorf("unlimited MTU rejected 1MiB: %v", err)
	}
}

func TestJitterDelaysDelivery(t *testing.T) {
	p := NewPipe(Profile{Latency: 2 * time.Millisecond, Impair: Impairment{Jitter: 5 * time.Millisecond}, Seed: 8})
	defer p.Close()
	start := time.Now()
	for range 5 {
		if err := p.Send([]byte("j")); err != nil {
			t.Fatal(err)
		}
	}
	for range 5 {
		if _, err := p.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	el := time.Since(start)
	if el < 2*time.Millisecond {
		t.Errorf("delivery in %v beat the base latency", el)
	}
	if el > 60*time.Millisecond {
		t.Errorf("jittered delivery took %v; jitter should stay under base+5ms each", el)
	}
}
