// Impairment model: the faults a simulated medium inflicts beyond
// plain loss. Every decision is a pure function of (seed, wire
// position), so a failing run replays exactly from its seed — the
// deterministic-simulation discipline that makes protocol torture
// results reproducible instead of anecdotal.
package medium

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Window is a scheduled partition in wire-position space: message
// number n (counting every transmission on the link, including
// retransmissions) is dropped while From <= n < To. Counting messages
// instead of wall time keeps partitions deterministic: the same seed
// and traffic always partition — and heal — at the same points.
type Window struct {
	From, To int64
}

// Contains reports whether wire position n falls inside the window.
func (w Window) Contains(n int64) bool { return n >= w.From && n < w.To }

// Impairment describes the fault model of a link. The zero value
// inflicts nothing; any non-zero field arms the impairer.
type Impairment struct {
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back and released
	// only after later messages have overtaken it.
	Reorder float64
	// ReorderDepth bounds how many later messages overtake a held
	// message (default 3). Protocols with small sequence spaces rely
	// on their medium bounding misordering — URP's mod-8 numbering
	// needs depth below its window, exactly as real Datakit
	// guaranteed — so scenarios must keep this within the protocol's
	// tolerance.
	ReorderDepth int
	// Corrupt is the probability a message has CorruptBits random
	// bits flipped in flight.
	Corrupt float64
	// CorruptBits is how many bits flip per corrupted message
	// (default 1).
	CorruptBits int
	// Jitter adds a pseudo-random extra propagation delay in
	// [0,Jitter) to each message.
	Jitter time.Duration
	// BurstP and BurstR drive the Gilbert–Elliott two-state loss
	// chain: per message, a good link enters the bursty state with
	// probability BurstP and leaves it with probability BurstR; while
	// bursty, messages drop with probability BurstLoss (default 1).
	BurstP, BurstR, BurstLoss float64
	// Partitions are scheduled outages; see Window.
	Partitions []Window
	// Record keeps the per-message Decision schedule for Schedule().
	// Memory is bounded (old decisions are kept up to a cap), so only
	// tests and the chaos driver should set it.
	Record bool
}

// String renders only the armed knobs, for scenario reports.
func (im Impairment) String() string {
	var b strings.Builder
	part := func(format string, args ...any) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, format, args...)
	}
	if im.Duplicate > 0 {
		part("dup=%g", im.Duplicate)
	}
	if im.Reorder > 0 {
		part("reorder=%g/%d", im.Reorder, im.ReorderDepth)
	}
	if im.Corrupt > 0 {
		part("corrupt=%g/%db", im.Corrupt, im.CorruptBits)
	}
	if im.Jitter > 0 {
		part("jitter=%v", im.Jitter)
	}
	if im.BurstP > 0 {
		part("burst=%g/%g/%g", im.BurstP, im.BurstR, im.BurstLoss)
	}
	for _, w := range im.Partitions {
		part("part=[%d,%d)", w.From, w.To)
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// Armed reports whether the impairment model (or baseline loss)
// requires per-message decisions at all; unarmed links keep their
// synchronous fast paths.
func (im Impairment) Armed(loss float64) bool {
	return loss > 0 || im.Duplicate > 0 || im.Reorder > 0 || im.Corrupt > 0 ||
		im.Jitter > 0 || im.BurstP > 0 || len(im.Partitions) > 0 || im.Record
}

// Decision records what the impairer did to one transmitted message.
type Decision struct {
	Index   int64         // wire position
	Drop    bool          // vanished entirely
	Reason  string        // "loss", "burst", or "partition" when Drop
	Dup     bool          // delivered twice
	Corrupt bool          // bits flipped
	Bits    []int         // which bit offsets flipped
	Hold    int           // messages that overtake this one (reorder)
	Jitter  time.Duration // extra propagation delay
}

// String renders the decision compactly for failure reports.
func (d Decision) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d", d.Index)
	switch {
	case d.Drop:
		fmt.Fprintf(&b, " drop(%s)", d.Reason)
	default:
		if d.Corrupt {
			fmt.Fprintf(&b, " corrupt%v", d.Bits)
		}
		if d.Dup {
			b.WriteString(" dup")
		}
		if d.Hold > 0 {
			fmt.Fprintf(&b, " hold=%d", d.Hold)
		}
		if d.Jitter > 0 {
			fmt.Fprintf(&b, " jitter=%s", d.Jitter)
		}
	}
	return b.String()
}

// Counts aggregates an impairer's activity.
type Counts struct {
	Sent       int64 // messages offered to the wire
	Emitted    int64 // copies actually put on the wire (incl. dups and releases)
	Dropped    int64 // vanished (loss, burst, partition)
	Duplicated int64 // extra copies emitted
	Corrupted  int64 // messages with flipped bits
	Held       int64 // messages held back for reordering
	Pending    int64 // held messages not yet released
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Sent += other.Sent
	c.Emitted += other.Emitted
	c.Dropped += other.Dropped
	c.Duplicated += other.Duplicated
	c.Corrupted += other.Corrupted
	c.Held += other.Held
	c.Pending += other.Pending
}

// String renders the counters for reports.
func (c Counts) String() string {
	return fmt.Sprintf("sent=%d emitted=%d dropped=%d dup=%d corrupt=%d held=%d pending=%d",
		c.Sent, c.Emitted, c.Dropped, c.Duplicated, c.Corrupted, c.Held, c.Pending)
}

// Emission is one copy the impairer puts on the wire: the (possibly
// corrupted) bytes and any extra propagation delay beyond the link
// latency.
type Emission struct {
	Data  []byte
	Delay time.Duration
}

// maxHeld caps the reorder hold queue so Reorder=1 cannot swallow the
// wire: when the queue is full further messages pass straight through.
const maxHeld = 16

// maxSched caps the recorded schedule so Record on a long run stays
// bounded.
const maxSched = 1 << 16

// Impairer applies an Impairment to a message sequence. The random
// draws are a pure function of (seed, wire position), so two impairers
// with the same seed fed the same sequence make identical decisions.
// Sequential state (the burst chain and the reorder hold queue) is
// mutex-guarded; media call Apply from their single serialization
// point, which also defines the wire-position order.
type Impairer struct {
	imp  Impairment
	loss float64
	seed int64

	mu     sync.Mutex
	index  int64
	burst  bool       // Gilbert–Elliott state
	held   []heldMsg  // messages waiting out their reorder hold
	sched  []Decision // recorded schedule when imp.Record
	counts Counts
}

type heldMsg struct {
	data  []byte
	delay time.Duration
	left  int // emissions still to pass before release
}

// NewImpairer builds an impairer over baseline loss plus the given
// impairment model, with defaults filled in.
func NewImpairer(seed int64, loss float64, imp Impairment) *Impairer {
	if imp.ReorderDepth <= 0 {
		imp.ReorderDepth = 3
	}
	if imp.CorruptBits <= 0 {
		imp.CorruptBits = 1
	}
	if imp.BurstLoss <= 0 {
		imp.BurstLoss = 1
	}
	return &Impairer{imp: imp, loss: loss, seed: seed}
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche hash good
// enough to turn (seed, position, draw) into independent uniforms.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Draw identifiers: each independent decision about wire position n
// hashes a distinct k so the uniforms never correlate.
const (
	drawBurstEnter = iota
	drawBurstLeave
	drawLoss
	drawCorrupt
	drawDup
	drawReorder
	drawHoldDepth
	drawJitter
	drawBitBase // bit i of a corrupted message uses drawBitBase+i
)

// draw returns the k'th pseudo-random word for wire position n — a
// pure function of (seed, n, k), which is what makes schedules
// replayable.
func (im *Impairer) draw(n int64, k uint64) uint64 {
	return mix64(mix64(uint64(im.seed)) ^ mix64(uint64(n)<<8^k))
}

// chance rolls probability p for draw k at position n.
func (im *Impairer) chance(p float64, n int64, k uint64) bool {
	if p <= 0 {
		return false
	}
	return float64(im.draw(n, k)>>11)/(1<<53) < p
}

func (im *Impairer) inPartition(n int64) bool {
	for _, w := range im.imp.Partitions {
		if w.Contains(n) {
			return true
		}
	}
	return false
}

func (im *Impairer) record(d Decision) {
	if im.imp.Record && len(im.sched) < maxSched {
		im.sched = append(im.sched, d)
	}
}

// Apply passes one transmitted message through the fault model and
// returns the copies that go on the wire now, in order. An empty
// result means the message vanished — dropped, or held back to be
// released after later traffic overtakes it. Apply never mutates or
// retains msg.
func (im *Impairer) Apply(msg []byte) []Emission {
	im.mu.Lock()
	defer im.mu.Unlock()
	n := im.index
	im.index++
	im.counts.Sent++
	d := Decision{Index: n}

	// Advance the Gilbert–Elliott chain first so the burst state
	// evolves even across messages a partition eats.
	if im.imp.BurstP > 0 {
		if im.burst {
			if im.chance(im.imp.BurstR, n, drawBurstLeave) {
				im.burst = false
			}
		} else if im.chance(im.imp.BurstP, n, drawBurstEnter) {
			im.burst = true
		}
	}

	switch {
	case im.inPartition(n):
		d.Drop, d.Reason = true, "partition"
	case im.burst && im.chance(im.imp.BurstLoss, n, drawLoss):
		d.Drop, d.Reason = true, "burst"
	case !im.burst && im.chance(im.loss, n, drawLoss):
		d.Drop, d.Reason = true, "loss"
	}
	if d.Drop {
		im.counts.Dropped++
		im.record(d)
		out := im.releaseLocked(nil)
		im.counts.Emitted += int64(len(out))
		return out
	}

	cp := append([]byte(nil), msg...)
	if len(cp) > 0 && im.chance(im.imp.Corrupt, n, drawCorrupt) {
		d.Corrupt = true
		im.counts.Corrupted++
		for i := 0; i < im.imp.CorruptBits; i++ {
			bit := int(im.draw(n, drawBitBase+uint64(i)) % uint64(len(cp)*8))
			cp[bit/8] ^= 1 << (bit % 8)
			d.Bits = append(d.Bits, bit)
		}
	}
	if im.imp.Jitter > 0 {
		d.Jitter = time.Duration(im.draw(n, drawJitter) % uint64(im.imp.Jitter))
	}

	// Hold back for reordering: the message leaves the wire now and
	// reappears after Hold later transmissions pass it.
	reorder := len(im.held) < maxHeld && im.chance(im.imp.Reorder, n, drawReorder)
	var out []Emission
	if reorder {
		d.Hold = 1 + int(im.draw(n, drawHoldDepth)%uint64(im.imp.ReorderDepth))
	} else {
		out = append(out, Emission{Data: cp, Delay: d.Jitter})
		if im.chance(im.imp.Duplicate, n, drawDup) {
			d.Dup = true
			im.counts.Duplicated++
			out = append(out, Emission{Data: append([]byte(nil), cp...), Delay: d.Jitter})
		}
	}
	im.record(d)
	out = im.releaseLocked(out)
	if reorder {
		im.counts.Held++
		im.counts.Pending++
		im.held = append(im.held, heldMsg{data: cp, delay: d.Jitter, left: d.Hold})
	}
	im.counts.Emitted += int64(len(out))
	return out
}

// releaseLocked ticks every held message's countdown — once per Apply,
// i.e. once per wire transmission — and appends expired holds after
// the current traffic. Counting transmissions (not emissions) bounds a
// held message's overtakers at exactly its Hold ≤ ReorderDepth
// distinct later messages, the guarantee small-sequence-space
// protocols (URP's mod-8) need from their medium.
func (im *Impairer) releaseLocked(out []Emission) []Emission {
	if len(im.held) == 0 {
		return out
	}
	keep := im.held[:0]
	for _, h := range im.held {
		h.left--
		if h.left <= 0 {
			out = append(out, Emission{Data: h.data, Delay: h.delay})
			im.counts.Pending--
		} else {
			keep = append(keep, h)
		}
	}
	im.held = keep
	return out
}

// Schedule returns a copy of the recorded decisions (requires
// Impairment.Record).
func (im *Impairer) Schedule() []Decision {
	im.mu.Lock()
	defer im.mu.Unlock()
	return append([]Decision(nil), im.sched...)
}

// Counts returns a snapshot of the activity counters.
func (im *Impairer) Counts() Counts {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.counts
}
