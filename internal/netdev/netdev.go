// Package netdev serves any transport protocol as the uniform
// protocol-device file tree of §2.3:
//
//	/net/tcp/clone
//	/net/tcp/0/{ctl,data,listen,local,remote,status}
//	...
//
// "All protocol devices look identical so user programs contain no
// network-specific code." The connection dance is the paper's:
//
//  1. open the clone file to reserve a conversation; the returned fd
//     is the ctl file of the new connection,
//  2. read it for the ASCII connection number,
//  3. write a protocol-specific ASCII address ("connect 135.104.9.31!564"),
//  4. open the data file to exchange bytes.
//
// A listener writes "announce <addr>" instead and then opens the
// listen file, which blocks until a call arrives and yields a file
// descriptor for the ctl file of the new connection.
package netdev

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/devtree"
	"repro/internal/netmsg"
	"repro/internal/obs"
	"repro/internal/streams"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/xport"
)

// MaxConvs bounds the conversations per protocol device.
const MaxConvs = 64

// Dev wraps an xport.Proto as a device file tree.
type Dev struct {
	proto xport.Proto
	owner string

	mu    sync.Mutex
	convs [MaxConvs]*conv
}

type conv struct {
	dev  *Dev
	id   int
	conn xport.Conn

	mu    sync.Mutex
	inuse int
	// line is the conversation's pushable module chain, materialized
	// lazily by the first "push" ctl (§2.4.1). Once present, the data
	// file's reads and writes pass through it instead of the bare
	// conversation.
	line *streams.Line
}

var _ vfs.Device = (*Dev)(nil)

// New wraps proto in its file tree.
func New(proto xport.Proto, owner string) *Dev {
	return &Dev{proto: proto, owner: owner}
}

// Name implements vfs.Device ("tcp", "il", "udp", "dk", "cyc").
func (d *Dev) Name() string { return d.proto.Name() }

// Attach implements vfs.Device.
func (d *Dev) Attach(spec string) (vfs.Node, error) {
	if spec != "" {
		return nil, vfs.ErrBadSpec
	}
	return d.Root(), nil
}

// alloc reserves a conversation slot, creating the protocol
// conversation behind it.
func (d *Dev) alloc() (*conv, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id := range MaxConvs {
		c := d.convs[id]
		if c == nil {
			c = &conv{dev: d, id: id}
			d.convs[id] = c
		}
		//netvet:ignore lock-across-send fixed hierarchy: device before conversation, never reversed
		c.mu.Lock()
		free := c.inuse == 0
		if free {
			conn, err := d.proto.NewConn()
			if err != nil {
				c.mu.Unlock()
				return nil, err
			}
			c.conn = conn
			c.inuse = 1
		}
		c.mu.Unlock()
		if free {
			return c, nil
		}
	}
	return nil, vfs.ErrInUse
}

// adopt places an accepted conversation into a fresh slot (the new
// connection a listen returns).
func (d *Dev) adopt(conn xport.Conn) (*conv, error) {
	d.mu.Lock()
	for id := range MaxConvs {
		c := d.convs[id]
		if c == nil {
			c = &conv{dev: d, id: id}
			d.convs[id] = c
		}
		//netvet:ignore lock-across-send fixed hierarchy: device before conversation, never reversed
		c.mu.Lock()
		free := c.inuse == 0
		if free {
			c.conn = conn
			c.inuse = 1
		}
		c.mu.Unlock()
		if free {
			d.mu.Unlock()
			return c, nil
		}
	}
	d.mu.Unlock()
	// Hang up outside the device lock: closing a conversation can park
	// on the wire, and the device must stay walkable meanwhile.
	conn.Close()
	return nil, vfs.ErrInUse
}

func (c *conv) incref() {
	c.mu.Lock()
	c.inuse++
	c.mu.Unlock()
}

func (c *conv) decref() {
	c.mu.Lock()
	c.inuse--
	done := c.inuse <= 0
	conn := c.conn
	line := c.line
	if done {
		c.inuse = 0
		c.conn = nil
		c.line = nil
	}
	c.mu.Unlock()
	if done && line != nil {
		line.Close() // pop-drains pending module data, then closes conn
		return
	}
	if done && conn != nil {
		conn.Close()
	}
}

func (c *conv) live() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inuse > 0
}

func (c *conv) xconn() xport.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn
}

// xline returns the conversation's module chain, nil before the first
// push.
func (c *conv) xline() *streams.Line {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.line
}

// clock returns the protocol's time source when it exposes one (every
// simulated protocol does, so a pushed module's flush timers run in
// virtual time with the rest of the scenario), the real clock
// otherwise.
func (d *Dev) clock() vclock.Clock {
	if cp, ok := d.proto.(interface{ Clock() vclock.Clock }); ok {
		return vclock.Or(cp.Clock())
	}
	return vclock.Or(nil)
}

// pushLine pushes one module spec onto the conversation's stream,
// creating the stream around the bare conversation on the first push.
// Pushing is operator-coordinated with traffic, as in the kernel: both
// ends push the same modules before exchanging data through them.
func (c *conv) pushLine(ck vclock.Clock, spec string) error {
	if spec == "" {
		return vfs.ErrBadCtl
	}
	c.mu.Lock()
	if c.conn == nil {
		c.mu.Unlock()
		return vfs.ErrHungup
	}
	if c.line == nil {
		c.line = streams.NewLine(c.conn, ck, 0)
	}
	l := c.line
	c.mu.Unlock()
	return l.WriteCtl(netmsg.Push(spec))
}

// Root returns the device's top directory.
func (d *Dev) Root() vfs.Node {
	root := &devtree.DirNode{Entry: devtree.MkDir(d.proto.Name(), d.owner, 0555)}
	root.List = func() ([]vfs.Dir, error) {
		ents := []vfs.Dir{
			devtree.MkFile("clone", d.owner, 0666),
			devtree.MkFile("stats", d.owner, 0444),
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		for id := range MaxConvs {
			if c := d.convs[id]; c != nil && c.live() {
				ents = append(ents, devtree.MkDir(strconv.Itoa(id), d.owner, 0555))
			}
		}
		return ents, nil
	}
	root.Lookup = func(name string) (vfs.Node, error) {
		if name == "stats" {
			return devtree.TextFile(devtree.MkFile("stats", d.owner, 0444),
				func() (string, error) { return d.statsText(), nil }), nil
		}
		if name == "clone" {
			return &devtree.FileNode{
				Entry: devtree.MkFile("clone", d.owner, 0666),
				OpenFn: func(mode int) (vfs.Handle, error) {
					c, err := d.alloc()
					if err != nil {
						return nil, err
					}
					return d.ctlHandle(c), nil
				},
			}, nil
		}
		id, err := strconv.Atoi(name)
		if err != nil || id < 0 || id >= MaxConvs {
			return nil, vfs.ErrNotExist
		}
		d.mu.Lock()
		c := d.convs[id]
		d.mu.Unlock()
		if c == nil || !c.live() {
			return nil, vfs.ErrNotExist
		}
		return d.convDir(c), nil
	}
	return root
}

// statsText renders one line per live conversation, netstat style,
// followed by the engine's counters and histograms when the protocol
// exposes an obs.Group — the "name: value" body of /net/PROTO/stats.
func (d *Dev) statsText() string {
	var b strings.Builder
	d.mu.Lock()
	for id := range MaxConvs {
		c := d.convs[id]
		if c == nil {
			continue
		}
		conn := c.xconn()
		if conn == nil {
			continue
		}
		fmt.Fprintf(&b, "%s/%d %s %s %s\n",
			d.proto.Name(), id, conn.Status(), conn.LocalAddr(), conn.RemoteAddr())
	}
	d.mu.Unlock()
	if sp, ok := d.proto.(interface{ StatsGroup() *obs.Group }); ok {
		if g := sp.StatsGroup(); g != nil {
			b.WriteString(g.Render())
		}
	}
	return b.String()
}

func (d *Dev) ctlHandle(c *conv) vfs.Handle {
	return &devtree.CtlHandle{
		Get:   func() (string, error) { return strconv.Itoa(c.id), nil },
		Cmd:   func(cmd string) error { return d.convCtl(c, cmd) },
		OnEnd: func() { c.decref() },
	}
}

// convCtl parses the ASCII control requests of §2.3.
func (d *Dev) convCtl(c *conv, cmd string) error {
	conn := c.xconn()
	if conn == nil {
		return vfs.ErrHungup
	}
	verb, arg := netmsg.Parse(cmd)
	switch verb {
	case netmsg.VerbConnect:
		if arg == "" {
			return vfs.ErrBadCtl
		}
		// A connect argument may carry a local-address suffix
		// ("addr local"), which we accept and ignore (most
		// networks do not support it, §5.1).
		addr, _, _ := strings.Cut(arg, " ")
		return conn.Connect(addr)
	case netmsg.VerbAnnounce:
		if arg == "" {
			return vfs.ErrBadCtl
		}
		return conn.Announce(arg)
	case netmsg.VerbHangup:
		if l := c.xline(); l != nil {
			return l.Close()
		}
		return conn.Close()
	case netmsg.VerbPush:
		// "push batch 2048 2ms", "push compress": dress the
		// conversation in a line discipline (§2.4.1).
		return c.pushLine(d.clock(), arg)
	case netmsg.VerbPop:
		l := c.xline()
		if l == nil {
			return streams.ErrNothingToPop
		}
		return l.WriteCtl(netmsg.Pop())
	case netmsg.VerbReject:
		// Datakit accepts a reason; IP networks ignore it (§5.2).
		return conn.Close()
	case netmsg.VerbTrace:
		// "trace on" arms the conversation's event ring; "trace off"
		// stops it. The buffered events stay readable either way.
		t, ok := conn.(obs.Tracer)
		if !ok {
			return vfs.ErrBadCtl
		}
		r := t.Trace()
		if r == nil {
			return vfs.ErrBadCtl
		}
		switch arg {
		case "on":
			r.Enable()
		case "off":
			r.Disable()
		default:
			return vfs.ErrBadCtl
		}
		return nil
	default:
		return vfs.ErrBadCtl
	}
}

// convDir serves one numbered connection directory.
func (d *Dev) convDir(c *conv) vfs.Node {
	mk := func(n string, perm uint32) vfs.Dir { return devtree.MkFile(n, d.owner, perm) }
	get := func(f func(xport.Conn) string) func() (string, error) {
		return func() (string, error) {
			conn := c.xconn()
			if conn == nil {
				return "", vfs.ErrHungup
			}
			return f(conn), nil
		}
	}
	ctl := &devtree.FileNode{
		Entry: mk("ctl", 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			c.incref()
			return d.ctlHandle(c), nil
		},
	}
	data := &devtree.FileNode{
		Entry: mk("data", 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			c.incref()
			return &dataHandle{c: c}, nil
		},
	}
	listen := &devtree.FileNode{
		Entry: mk("listen", 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			conn := c.xconn()
			if conn == nil {
				return nil, vfs.ErrHungup
			}
			// Block until a call arrives; the returned handle is
			// the ctl file of the new connection.
			nconn, err := conn.Listen()
			if err != nil {
				return nil, err
			}
			nc, err := d.adopt(nconn)
			if err != nil {
				return nil, err
			}
			return d.ctlHandle(nc), nil
		},
	}
	local := devtree.TextFile(mk("local", 0444),
		get(func(cn xport.Conn) string { return cn.LocalAddr() + "\n" }))
	remote := devtree.TextFile(mk("remote", 0444),
		get(func(cn xport.Conn) string { return cn.RemoteAddr() + "\n" }))
	status := devtree.TextFile(mk("status", 0444),
		get(func(cn xport.Conn) string {
			return d.proto.Name() + "/" + strconv.Itoa(c.id) + " " + cn.Status() + "\n"
		}))
	// The conversation's stats file: one counter group per pushed
	// module, rendered top first — the per-conversation bill for its
	// line disciplines. Empty until something is pushed.
	stats := devtree.TextFile(mk("stats", 0444), func() (string, error) {
		if !c.live() {
			return "", vfs.ErrHungup
		}
		l := c.xline()
		if l == nil {
			return "", nil
		}
		return l.StatsText(), nil
	})
	nodes := map[string]vfs.Node{
		"ctl": ctl, "data": data, "listen": listen,
		"local": local, "remote": remote, "stats": stats, "status": status,
	}
	order := []string{"ctl", "data", "listen", "local", "remote", "stats", "status"}
	if _, ok := c.xconn().(obs.Tracer); ok {
		// The conversation carries an event ring: serve it as the
		// trace file (§6.1's remote diagnosis — arm with "trace on",
		// read the events back, locally or over an imported /net).
		nodes["trace"] = devtree.TextFile(mk("trace", 0444),
			get(func(cn xport.Conn) string {
				r := cn.(obs.Tracer).Trace()
				if r == nil {
					return ""
				}
				return r.TraceText()
			}))
		order = append(order, "trace")
	}
	return devtree.StaticDir(devtree.MkDir(strconv.Itoa(c.id), d.owner, 0555),
		nodes, order)
}

// dataHandle is the data file: the process end of the conversation's
// stream.
type dataHandle struct{ c *conv }

var _ vfs.Handle = (*dataHandle)(nil)

// Read implements vfs.Handle (offset ignored; stream semantics).
// When the conversation wears a line discipline, reads come off the
// top of its stream; otherwise straight from the protocol.
func (h *dataHandle) Read(p []byte, off int64) (int, error) {
	if l := h.c.xline(); l != nil {
		n, err := l.Read(p)
		if err == io.EOF {
			return n, nil
		}
		return n, err
	}
	conn := h.c.xconn()
	if conn == nil {
		return 0, vfs.ErrHungup
	}
	n, err := conn.Read(p)
	if err == io.EOF {
		return n, nil // EOF is a zero-length read at the file boundary
	}
	return n, err
}

// Write implements vfs.Handle.
func (h *dataHandle) Write(p []byte, off int64) (int, error) {
	if l := h.c.xline(); l != nil {
		return l.Write(p)
	}
	conn := h.c.xconn()
	if conn == nil {
		return 0, vfs.ErrHungup
	}
	return conn.Write(p)
}

// Close implements vfs.Handle.
func (h *dataHandle) Close() error {
	h.c.decref()
	return nil
}
