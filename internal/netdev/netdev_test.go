package netdev

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ether"
	"repro/internal/il"
	"repro/internal/ip"
	"repro/internal/ns"
	"repro/internal/obs"
	"repro/internal/ramfs"
	"repro/internal/tcp"
	"repro/internal/vfs"
)

// world builds two machines with TCP and IL devices mounted in their
// name spaces.
func world(t *testing.T) (nsA, nsB *ns.Namespace, addrA, addrB ip.Addr) {
	t.Helper()
	seg := ether.NewSegment("e0", ether.Profile{})
	t.Cleanup(seg.Close)
	mask := ip.Addr{255, 255, 255, 0}
	addrA = ip.Addr{135, 104, 9, 31}
	addrB = ip.Addr{135, 104, 53, 11}
	maskB := ip.Addr{255, 255, 0, 0} // same segment, one big net
	_ = maskB
	mk := func(a ip.Addr) (*ns.Namespace, *ip.Stack) {
		st := ip.NewStack()
		if _, err := st.Bind(seg.NewInterface("ether0"), a, ip.Addr{255, 255, 0, 0}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		tp, ilp := tcp.New(st), il.New(st, il.Config{})
		// Engine teardown wakes any goroutine still parked in a
		// blocking listen open when the test ends.
		t.Cleanup(func() { tp.Close(); ilp.Close() })
		nsp := ns.New("bootes", ramfs.New("bootes").Root())
		nsp.MountDevice(New(tp, "bootes"), "", "/net/tcp", ns.MREPL)
		nsp.MountDevice(New(ilp, "bootes"), "", "/net/il", ns.MREPL)
		_ = mask
		return nsp, st
	}
	nsA, _ = mk(addrA)
	nsB, _ = mk(addrB)
	return nsA, nsB, addrA, addrB
}

// TestPaperConnectionDance walks the exact four steps of §2.3.
func TestPaperConnectionDance(t *testing.T) {
	nsA, nsB, _, addrB := world(t)

	// Server: clone, announce, open listen (blocks), then echo.
	go func() {
		lctl, err := nsB.Open("/net/tcp/clone", vfs.ORDWR)
		if err != nil {
			t.Error(err)
			return
		}
		defer lctl.Close()
		buf := make([]byte, 16)
		n, _ := lctl.Read(buf)
		dir := "/net/tcp/" + string(buf[:n])
		if _, err := lctl.WriteString("announce 564"); err != nil {
			t.Error(err)
			return
		}
		// Opening the listen file blocks until a call arrives and
		// returns a file descriptor for the ctl file of the new
		// connection.
		nctl, err := nsB.Open(dir+"/listen", vfs.ORDWR)
		if err != nil {
			t.Error(err)
			return
		}
		defer nctl.Close()
		n, _ = nctl.Read(buf)
		ndir := "/net/tcp/" + string(buf[:n])
		data, err := nsB.Open(ndir+"/data", vfs.ORDWR)
		if err != nil {
			t.Error(err)
			return
		}
		defer data.Close()
		b := make([]byte, 256)
		rn, err := data.Read(b)
		if err != nil {
			t.Error(err)
			return
		}
		data.Write(b[:rn])
	}()

	time.Sleep(20 * time.Millisecond) // let the announce land

	// Client: 1) open clone, 2) read connection number, 3) write the
	// address to ctl, 4) open data.
	ctl, err := nsA.Open("/net/tcp/clone", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	buf := make([]byte, 16)
	n, err := ctl.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	convNum := string(buf[:n])
	if convNum != "0" && convNum != "1" {
		t.Errorf("connection number %q", convNum)
	}
	if _, err := ctl.WriteString("connect " + addrB.String() + "!564"); err != nil {
		t.Fatal(err)
	}
	dir := "/net/tcp/" + convNum
	data, err := nsA.Open(dir+"/data", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()

	// The connection directory has the §2.3 files and the paper's
	// "cat local remote status" works (checked before the echo so the
	// server has not yet closed its end).
	ents, _ := nsA.ReadDir(dir)
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	if strings.Join(names, " ") != "ctl data listen local remote stats status trace" {
		t.Errorf("conversation dir: %v", names)
	}
	local, _ := nsA.ReadFile(dir + "/local")
	remote, _ := nsA.ReadFile(dir + "/remote")
	status, _ := nsA.ReadFile(dir + "/status")
	if !strings.Contains(string(remote), addrB.String()+"!564") {
		t.Errorf("remote file %q", remote)
	}
	if len(local) == 0 {
		t.Error("empty local file")
	}
	if !strings.Contains(string(status), "Established") {
		t.Errorf("status file %q", status)
	}
	if !strings.HasPrefix(string(status), "tcp/") {
		t.Errorf("status should begin with proto/conv: %q", status)
	}

	if _, err := data.WriteString("echo me"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	rn, err := data.Read(got)
	if err != nil || string(got[:rn]) != "echo me" {
		t.Fatalf("echoed %q, %v", got[:rn], err)
	}
}

func TestProtoDevicesLookIdentical(t *testing.T) {
	// The same code drives IL with zero changes: only the directory
	// name and the address differ.
	nsA, nsB, _, addrB := world(t)
	go func() {
		lctl, err := nsB.Open("/net/il/clone", vfs.ORDWR)
		if err != nil {
			return
		}
		defer lctl.Close()
		buf := make([]byte, 16)
		n, _ := lctl.Read(buf)
		lctl.WriteString("announce 17008")
		nctl, err := nsB.Open("/net/il/"+string(buf[:n])+"/listen", vfs.ORDWR)
		if err != nil {
			return
		}
		defer nctl.Close()
		n, _ = nctl.Read(buf)
		data, err := nsB.Open("/net/il/"+string(buf[:n])+"/data", vfs.ORDWR)
		if err != nil {
			return
		}
		defer data.Close()
		b := make([]byte, 256)
		rn, _ := data.Read(b)
		data.Write(b[:rn])
	}()
	time.Sleep(20 * time.Millisecond)

	ctl, err := nsA.Open("/net/il/clone", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	buf := make([]byte, 16)
	n, _ := ctl.Read(buf)
	if _, err := ctl.WriteString("connect " + addrB.String() + "!17008"); err != nil {
		t.Fatal(err)
	}
	data, err := nsA.Open("/net/il/"+string(buf[:n])+"/data", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	data.WriteString("il says hi")
	got := make([]byte, 64)
	rn, err := data.Read(got)
	if err != nil || string(got[:rn]) != "il says hi" {
		t.Fatalf("il echo %q, %v", got[:rn], err)
	}
}

func TestBadCtlCommands(t *testing.T) {
	nsA, _, _, _ := world(t)
	ctl, err := nsA.Open("/net/tcp/clone", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if _, err := ctl.WriteString("frobnicate"); !vfs.SameError(err, vfs.ErrBadCtl) {
		t.Errorf("unknown verb = %v", err)
	}
	if _, err := ctl.WriteString("connect"); !vfs.SameError(err, vfs.ErrBadCtl) {
		t.Errorf("connect without arg = %v", err)
	}
	if _, err := ctl.WriteString("connect not!an!address!at!all"); err == nil {
		t.Error("garbage address accepted")
	}
}

func TestConversationFreedOnLastClose(t *testing.T) {
	nsA, _, _, _ := world(t)
	ctl, _ := nsA.Open("/net/tcp/clone", vfs.ORDWR)
	buf := make([]byte, 8)
	n, _ := ctl.Read(buf)
	dir := "/net/tcp/" + string(buf[:n])
	if _, err := nsA.Stat(dir); err != nil {
		t.Fatalf("conv dir missing while ctl open: %v", err)
	}
	ctl.Close()
	if _, err := nsA.Stat(dir); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("conv dir survives last close: %v", err)
	}
	// The slot is reused by the next clone.
	ctl2, _ := nsA.Open("/net/tcp/clone", vfs.ORDWR)
	defer ctl2.Close()
	n, _ = ctl2.Read(buf)
	if string(buf[:n]) != "0" {
		t.Errorf("slot not reused: got %q", buf[:n])
	}
}

func TestCloneListsOnlyLiveConversations(t *testing.T) {
	nsA, _, _, _ := world(t)
	c0, _ := nsA.Open("/net/tcp/clone", vfs.ORDWR)
	defer c0.Close()
	c1, _ := nsA.Open("/net/tcp/clone", vfs.ORDWR)
	ents, _ := nsA.ReadDir("/net/tcp")
	if len(ents) != 4 { // clone + stats + 0 + 1
		t.Errorf("entries %d, want 4", len(ents))
	}
	c1.Close()
	ents, _ = nsA.ReadDir("/net/tcp")
	if len(ents) != 3 {
		t.Errorf("after close: %d entries, want 3", len(ents))
	}
	// The stats file reports the live conversation.
	b, err := nsA.ReadFile("/net/tcp/stats")
	if err != nil || !strings.HasPrefix(string(b), "tcp/0 ") {
		t.Errorf("stats file %q, %v", b, err)
	}
}

func TestHangupCtl(t *testing.T) {
	nsA, nsB, _, addrB := world(t)
	go func() {
		lctl, err := nsB.Open("/net/tcp/clone", vfs.ORDWR)
		if err != nil {
			return
		}
		defer lctl.Close()
		buf := make([]byte, 16)
		n, _ := lctl.Read(buf)
		lctl.WriteString("announce 23")
		nctl, err := nsB.Open("/net/tcp/"+string(buf[:n])+"/listen", vfs.ORDWR)
		if err == nil {
			defer nctl.Close()
			time.Sleep(200 * time.Millisecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	ctl, _ := nsA.Open("/net/tcp/clone", vfs.ORDWR)
	defer ctl.Close()
	buf := make([]byte, 8)
	ctl.Read(buf)
	if _, err := ctl.WriteString("connect " + addrB.String() + "!23"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.WriteString("hangup"); err != nil {
		t.Errorf("hangup ctl: %v", err)
	}
}

// TestPushedModulesThroughCtl arms a conversation with the production
// line-discipline stack via the ctl file — "push compress", "push
// batch" — on both ends, exchanges traffic through the data files, and
// checks the per-conversation stats file reports balanced module
// counters. Then it pops the stack back off and verifies a bare pop is
// rejected.
func TestPushedModulesThroughCtl(t *testing.T) {
	nsA, nsB, _, addrB := world(t)

	const nmsg = 20
	srvReady := make(chan struct{})
	go func() {
		lctl, err := nsB.Open("/net/tcp/clone", vfs.ORDWR)
		if err != nil {
			t.Error(err)
			return
		}
		defer lctl.Close()
		buf := make([]byte, 16)
		n, _ := lctl.Read(buf)
		if _, err := lctl.WriteString("announce 7777"); err != nil {
			t.Error(err)
			return
		}
		close(srvReady)
		nctl, err := nsB.Open("/net/tcp/"+string(buf[:n])+"/listen", vfs.ORDWR)
		if err != nil {
			t.Error(err)
			return
		}
		defer nctl.Close()
		n, _ = nctl.Read(buf)
		ndir := "/net/tcp/" + string(buf[:n])
		// Arm the accepted conversation before touching data: both
		// ends of the wire must run the same stack in the same order.
		if _, err := nctl.WriteString("push compress"); err != nil {
			t.Error(err)
			return
		}
		if _, err := nctl.WriteString("push batch 256 1ms"); err != nil {
			t.Error(err)
			return
		}
		data, err := nsB.Open(ndir+"/data", vfs.ORDWR)
		if err != nil {
			t.Error(err)
			return
		}
		defer data.Close()
		b := make([]byte, 4096)
		for i := 0; i < nmsg; i++ {
			rn, err := data.Read(b)
			if err != nil {
				t.Errorf("server read %d: %v", i, err)
				return
			}
			if _, err := data.Write(b[:rn]); err != nil {
				t.Errorf("server echo %d: %v", i, err)
				return
			}
		}
	}()
	<-srvReady
	time.Sleep(20 * time.Millisecond)

	ctl, err := nsA.Open("/net/tcp/clone", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	buf := make([]byte, 16)
	n, _ := ctl.Read(buf)
	dir := "/net/tcp/" + string(buf[:n])

	// An undisciplined conversation has an empty stats file.
	if b, err := nsA.ReadFile(dir + "/stats"); err != nil || len(b) != 0 {
		t.Errorf("stats before connect: %q, %v", b, err)
	}
	if _, err := ctl.WriteString("connect " + addrB.String() + "!7777"); err != nil {
		t.Fatal(err)
	}
	// Live but undisciplined: the stats file exists and is empty.
	if b, err := nsA.ReadFile(dir + "/stats"); err != nil || len(b) != 0 {
		t.Errorf("stats before push: %q, %v", b, err)
	}
	if _, err := ctl.WriteString("push compress"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.WriteString("push batch 256 1ms"); err != nil {
		t.Fatal(err)
	}
	// A bad spec must not wedge the armed conversation.
	if _, err := ctl.WriteString("push batch nope"); err == nil {
		t.Error("bad push spec accepted")
	}

	data, err := nsA.Open(dir+"/data", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	var sent int
	b := make([]byte, 4096)
	for i := 0; i < nmsg; i++ {
		msg := []byte(strings.Repeat("abcdefgh", i+1))
		sent += len(msg)
		if _, err := data.Write(msg); err != nil {
			t.Fatal(err)
		}
		rn, err := data.Read(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(b[:rn]) != string(msg) {
			t.Fatalf("echo %d: %d bytes back, want %d", i, rn, len(msg))
		}
	}

	// The stats file must parse back to balanced module counters.
	sb, err := nsA.ReadFile(dir + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := obs.ParseStats(string(sb))
	if st["batch-msgs-in"] != nmsg {
		t.Errorf("batch-msgs-in = %d, want %d:\n%s", st["batch-msgs-in"], nmsg, sb)
	}
	if st["batch-bytes-in"] != int64(sent) {
		t.Errorf("batch-bytes-in = %d, want %d", st["batch-bytes-in"], sent)
	}
	if st["compress-saved-bytes"]+st["compress-wire-bytes"] != st["compress-bytes-in"] {
		t.Errorf("compress identity broken:\n%s", sb)
	}
	if st["compress-dec-errs"] != 0 || st["batch-errs"] != 0 {
		t.Errorf("decode errors on a clean wire:\n%s", sb)
	}

	// Pop the stack back off; a third pop has nothing left to take.
	if _, err := ctl.WriteString("pop"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.WriteString("pop"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.WriteString("pop"); err == nil {
		t.Error("pop on an empty stack accepted")
	}
}
