// Package devtree is the framework on which every kernel-resident
// device file system in this repository is built: the analogue of the
// Plan 9 kernel's devattach/devwalk/devdirread helpers (§2.2 of the
// paper: "Each device driver is a kernel-resident file system").
//
// A device describes its tree with DirNode (directories whose entries
// may be generated dynamically, like the numbered conversation
// directories of a protocol device) and FileNode (files whose open
// produces a Handle). Common handle shapes — read-only generated text,
// ctl files parsing ASCII commands, byte streams — have ready-made
// adapters so drivers contain only their own semantics.
package devtree

import (
	"strings"
	"sync"
	"time"

	"repro/internal/vfs"
)

// Now returns the time in seconds for Dir stamps.
func Now() uint32 { return uint32(time.Now().Unix()) } //netvet:ignore realtime file mtimes are cosmetic wall-clock stamps

// MkDir fills a Dir for a directory with conventional ownership.
func MkDir(name, owner string, perm uint32) vfs.Dir {
	return vfs.Dir{
		Name:  name,
		Qid:   vfs.Qid{Path: vfs.NewQidPath(), Type: vfs.QTDIR},
		Mode:  vfs.DMDIR | perm,
		Uid:   owner,
		Gid:   owner,
		Muid:  owner,
		Atime: Now(),
		Mtime: Now(),
	}
}

// MkFile fills a Dir for a plain file.
func MkFile(name, owner string, perm uint32) vfs.Dir {
	return vfs.Dir{
		Name:  name,
		Qid:   vfs.Qid{Path: vfs.NewQidPath(), Type: vfs.QTFILE},
		Mode:  perm,
		Uid:   owner,
		Gid:   owner,
		Muid:  owner,
		Atime: Now(),
		Mtime: Now(),
	}
}

// DirNode is a directory whose children are produced on demand.
type DirNode struct {
	Entry vfs.Dir
	// List returns the directory's entries for a directory read.
	List func() ([]vfs.Dir, error)
	// Lookup walks to a named child.
	Lookup func(name string) (vfs.Node, error)
}

var (
	_ vfs.Node      = (*DirNode)(nil)
	_ vfs.DirReader = (*dirHandle)(nil)
)

// Stat implements vfs.Node.
func (d *DirNode) Stat() (vfs.Dir, error) { return d.Entry, nil }

// Walk implements vfs.Node.
func (d *DirNode) Walk(name string) (vfs.Node, error) {
	if d.Lookup == nil {
		return nil, vfs.ErrNotExist
	}
	return d.Lookup(name)
}

// Open implements vfs.Node; directories open read-only.
func (d *DirNode) Open(mode int) (vfs.Handle, error) {
	if vfs.AccessMode(mode) != vfs.OREAD {
		return nil, vfs.ErrIsDir
	}
	return &dirHandle{d: d}, nil
}

type dirHandle struct{ d *DirNode }

func (h *dirHandle) ReadDir() ([]vfs.Dir, error) {
	if h.d.List == nil {
		return nil, nil
	}
	return h.d.List()
}

func (h *dirHandle) Read(p []byte, off int64) (int, error) {
	ents, err := h.ReadDir()
	if err != nil {
		return 0, err
	}
	return vfs.ReadDirAt(ents, p, off)
}

func (h *dirHandle) Write(p []byte, off int64) (int, error) {
	return 0, vfs.ErrIsDir
}

func (h *dirHandle) Close() error { return nil }

// StaticDir builds a DirNode over a fixed name → Node map. The map must
// not be mutated afterwards.
func StaticDir(entry vfs.Dir, children map[string]vfs.Node, order []string) *DirNode {
	return &DirNode{
		Entry: entry,
		List: func() ([]vfs.Dir, error) {
			ents := make([]vfs.Dir, 0, len(order))
			for _, name := range order {
				d, err := children[name].Stat()
				if err != nil {
					return nil, err
				}
				ents = append(ents, d)
			}
			return ents, nil
		},
		Lookup: func(name string) (vfs.Node, error) {
			c, ok := children[name]
			if !ok {
				return nil, vfs.ErrNotExist
			}
			return c, nil
		},
	}
}

// FileNode is a plain file; OpenFn supplies the per-open state.
type FileNode struct {
	Entry  vfs.Dir
	OpenFn func(mode int) (vfs.Handle, error)
	// StatFn, if non-nil, overrides Entry (e.g. to report a live
	// length); it receives the static entry as a template.
	StatFn func(vfs.Dir) (vfs.Dir, error)
}

var _ vfs.Node = (*FileNode)(nil)

// Stat implements vfs.Node.
func (f *FileNode) Stat() (vfs.Dir, error) {
	if f.StatFn != nil {
		return f.StatFn(f.Entry)
	}
	return f.Entry, nil
}

// Walk implements vfs.Node.
func (f *FileNode) Walk(name string) (vfs.Node, error) { return nil, vfs.ErrNotDir }

// Open implements vfs.Node.
func (f *FileNode) Open(mode int) (vfs.Handle, error) {
	if f.OpenFn == nil {
		return nil, vfs.ErrPerm
	}
	return f.OpenFn(mode)
}

// ReadAtString serves an offset read from a string; the standard way a
// device answers reads of a generated text file.
func ReadAtString(p []byte, off int64, s string) (int, error) {
	if off >= int64(len(s)) {
		return 0, nil
	}
	return copy(p, s[off:]), nil
}

// TextHandle snapshots Get() at first read and serves it at offsets, so
// a reader paging through a status file sees one consistent generation.
type TextHandle struct {
	Get func() (string, error)

	mu   sync.Mutex
	got  bool
	text string
}

var _ vfs.Handle = (*TextHandle)(nil)

// Read implements vfs.Handle.
func (h *TextHandle) Read(p []byte, off int64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.got || off == 0 {
		s, err := h.Get()
		if err != nil {
			return 0, err
		}
		h.text, h.got = s, true
	}
	return ReadAtString(p, off, h.text)
}

// Write implements vfs.Handle.
func (h *TextHandle) Write(p []byte, off int64) (int, error) {
	return 0, vfs.ErrPerm
}

// Close implements vfs.Handle.
func (h *TextHandle) Close() error { return nil }

// TextFile builds a read-only file whose content is generated per open.
func TextFile(entry vfs.Dir, get func() (string, error)) *FileNode {
	return &FileNode{
		Entry: entry,
		OpenFn: func(mode int) (vfs.Handle, error) {
			if vfs.ModeWritable(mode) {
				return nil, vfs.ErrPerm
			}
			return &TextHandle{Get: get}, nil
		},
	}
}

// CtlHandle is the standard control-file shape (§2.4.1: "ioctl is
// replaced by the ctl file"): each write is an ASCII command handed to
// Cmd; reads return Get() (typically the connection number).
type CtlHandle struct {
	Cmd   func(cmd string) error
	Get   func() (string, error)
	OnEnd func()

	mu   sync.Mutex
	got  bool
	text string
}

var _ vfs.Handle = (*CtlHandle)(nil)

// Read implements vfs.Handle.
func (h *CtlHandle) Read(p []byte, off int64) (int, error) {
	if h.Get == nil {
		return 0, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.got || off == 0 {
		s, err := h.Get()
		if err != nil {
			return 0, err
		}
		h.text, h.got = s, true
	}
	return ReadAtString(p, off, h.text)
}

// Write implements vfs.Handle. Each write is one command; a trailing
// newline is stripped, as Plan 9 ctl files do for echo(1) convenience.
func (h *CtlHandle) Write(p []byte, off int64) (int, error) {
	if h.Cmd == nil {
		return 0, vfs.ErrPerm
	}
	cmd := strings.TrimSuffix(string(p), "\n")
	if err := h.Cmd(cmd); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close implements vfs.Handle.
func (h *CtlHandle) Close() error {
	if h.OnEnd != nil {
		h.OnEnd()
	}
	return nil
}

// ParseCmd splits an ASCII ctl command into fields.
func ParseCmd(cmd string) []string { return strings.Fields(cmd) }
