package devtree

import (
	"strings"
	"testing"

	"repro/internal/vfs"
)

func TestMkDirMkFile(t *testing.T) {
	d := MkDir("net", "bootes", 0555)
	if !d.IsDir() || d.Mode != vfs.DMDIR|0555 || d.Qid.Type != vfs.QTDIR {
		t.Errorf("MkDir %+v", d)
	}
	f := MkFile("ctl", "bootes", 0666)
	if f.IsDir() || f.Uid != "bootes" || f.Qid.Type != vfs.QTFILE {
		t.Errorf("MkFile %+v", f)
	}
	if d.Qid.Path == f.Qid.Path {
		t.Error("qid paths collide")
	}
}

func TestStaticDir(t *testing.T) {
	ctl := &FileNode{Entry: MkFile("ctl", "u", 0666)}
	data := &FileNode{Entry: MkFile("data", "u", 0666)}
	dir := StaticDir(MkDir("1", "u", 0555),
		map[string]vfs.Node{"ctl": ctl, "data": data}, []string{"ctl", "data"})

	// Walk.
	n, err := dir.Walk("ctl")
	if err != nil || n != vfs.Node(ctl) {
		t.Errorf("walk ctl: %v, %v", n, err)
	}
	if _, err := dir.Walk("missing"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("missing walk = %v", err)
	}
	// List preserves order.
	h, err := dir.Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	ents, _ := h.(vfs.DirReader).ReadDir()
	if len(ents) != 2 || ents[0].Name != "ctl" || ents[1].Name != "data" {
		t.Errorf("entries %+v", ents)
	}
	// Raw directory read marshals records.
	buf := make([]byte, 4*vfs.DirRecLen)
	rn, err := h.Read(buf, 0)
	if err != nil || rn != 2*vfs.DirRecLen {
		t.Errorf("raw read %d, %v", rn, err)
	}
	// Writes and write-opens refused.
	if _, err := h.Write([]byte("x"), 0); !vfs.SameError(err, vfs.ErrIsDir) {
		t.Errorf("dir write = %v", err)
	}
	if _, err := dir.Open(vfs.OWRITE); !vfs.SameError(err, vfs.ErrIsDir) {
		t.Errorf("dir write-open = %v", err)
	}
	h.Close()
}

func TestFileNodeBasics(t *testing.T) {
	n := &FileNode{Entry: MkFile("f", "u", 0666)}
	if _, err := n.Walk("x"); !vfs.SameError(err, vfs.ErrNotDir) {
		t.Errorf("file walk = %v", err)
	}
	// No OpenFn: refused.
	if _, err := n.Open(vfs.OREAD); !vfs.SameError(err, vfs.ErrPerm) {
		t.Errorf("open without OpenFn = %v", err)
	}
	// StatFn overrides.
	n.StatFn = func(d vfs.Dir) (vfs.Dir, error) {
		d.Length = 42
		return d, nil
	}
	d, _ := n.Stat()
	if d.Length != 42 {
		t.Errorf("StatFn length %d", d.Length)
	}
}

func TestTextFileSnapshot(t *testing.T) {
	calls := 0
	f := TextFile(MkFile("status", "u", 0444), func() (string, error) {
		calls++
		return "state one\n", nil
	})
	h, err := f.Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	buf := make([]byte, 5)
	n, _ := h.Read(buf, 0)
	if string(buf[:n]) != "state" {
		t.Errorf("first chunk %q", buf[:n])
	}
	// Continuation read at an offset uses the same snapshot.
	n, _ = h.Read(buf, 5)
	if string(buf[:n]) != " one\n" {
		t.Errorf("second chunk %q", buf[:n])
	}
	if calls != 1 {
		t.Errorf("generator ran %d times for one paging sequence", calls)
	}
	// A fresh read from 0 regenerates.
	h.Read(buf, 0)
	if calls != 2 {
		t.Errorf("generator ran %d times after rewind", calls)
	}
	// Writes refused.
	if _, err := h.Write([]byte("x"), 0); !vfs.SameError(err, vfs.ErrPerm) {
		t.Errorf("text write = %v", err)
	}
	// Write-open refused.
	if _, err := f.Open(vfs.OWRITE); !vfs.SameError(err, vfs.ErrPerm) {
		t.Errorf("text write-open = %v", err)
	}
}

func TestCtlHandle(t *testing.T) {
	var got []string
	closed := false
	h := &CtlHandle{
		Cmd: func(cmd string) error {
			got = append(got, cmd)
			if strings.HasPrefix(cmd, "bad") {
				return vfs.ErrBadCtl
			}
			return nil
		},
		Get:   func() (string, error) { return "7", nil },
		OnEnd: func() { closed = true },
	}
	// Trailing newline stripped (echo compatibility).
	if _, err := h.Write([]byte("connect 2048\n"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("bad cmd"), 0); !vfs.SameError(err, vfs.ErrBadCtl) {
		t.Errorf("bad ctl = %v", err)
	}
	if len(got) != 2 || got[0] != "connect 2048" {
		t.Errorf("commands %v", got)
	}
	buf := make([]byte, 4)
	n, _ := h.Read(buf, 0)
	if string(buf[:n]) != "7" {
		t.Errorf("ctl read %q", buf[:n])
	}
	h.Close()
	if !closed {
		t.Error("OnEnd not called")
	}
}

func TestCtlHandleNilHooks(t *testing.T) {
	h := &CtlHandle{}
	if _, err := h.Write([]byte("x"), 0); !vfs.SameError(err, vfs.ErrPerm) {
		t.Errorf("write without Cmd = %v", err)
	}
	if n, err := h.Read(make([]byte, 4), 0); n != 0 || err != nil {
		t.Errorf("read without Get = %d, %v", n, err)
	}
	if err := h.Close(); err != nil {
		t.Errorf("close without OnEnd = %v", err)
	}
}

func TestReadAtString(t *testing.T) {
	buf := make([]byte, 4)
	n, err := ReadAtString(buf, 0, "hello")
	if err != nil || string(buf[:n]) != "hell" {
		t.Errorf("ReadAtString = %q, %v", buf[:n], err)
	}
	n, _ = ReadAtString(buf, 4, "hello")
	if string(buf[:n]) != "o" {
		t.Errorf("offset read %q", buf[:n])
	}
	n, _ = ReadAtString(buf, 99, "hello")
	if n != 0 {
		t.Errorf("past-end read %d", n)
	}
}

func TestParseCmd(t *testing.T) {
	if f := ParseCmd("connect  2048 "); len(f) != 2 || f[0] != "connect" || f[1] != "2048" {
		t.Errorf("ParseCmd %v", f)
	}
	if f := ParseCmd(""); len(f) != 0 {
		t.Errorf("empty ParseCmd %v", f)
	}
}

func TestDirNodeNilHooks(t *testing.T) {
	d := &DirNode{Entry: MkDir("x", "u", 0555)}
	if _, err := d.Walk("a"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("walk without Lookup = %v", err)
	}
	h, err := d.Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := h.(vfs.DirReader).ReadDir()
	if err != nil || ents != nil {
		t.Errorf("list without List = %v, %v", ents, err)
	}
}
