// Home: the paper's slow-link story (§1): "9600 baud serial lines
// provide slow links to users at home. ... At home or when connected
// over a slow network, users tend to do most work on the CPU server
// to minimize traffic on the slow links."
//
// A home terminal hangs off helix over a serial line (/dev/eia1). The
// serial wire carries bytes, not messages, so the 9P mount uses the
// §2.1 marshaling adapter. The user then works "on the CPU server":
// instead of pulling a big file across the 9600-baud line, the remote
// end computes over it and ships back only the answer.
//
//	go run ./examples/home
package main

import (
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exportfs"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/ramfs"
	"repro/internal/uart"
	"repro/internal/vfs"
)

// endRWC adapts a UART end to io.ReadWriteCloser for the 9P adapter.
type endRWC struct{ e *uart.End }

func (w endRWC) Read(p []byte) (int, error) {
	n, err := w.e.Read(p)
	if n == 0 && err == nil {
		return 0, io.EOF
	}
	return n, err
}
func (w endRWC) Write(p []byte) (int, error) { return w.e.Write(p) }
func (w endRWC) Close() error                { return w.e.Close() }

func main() {
	world, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	helix := world.Machine("helix")

	// The phone line: 56k at home, because 9600 baud makes the demo
	// contemplative (the pacing is real — try it).
	line := uart.NewLine()
	defer line.Close()
	homeEnd, cpuEnd := line.Ends()
	homeEnd.SetBaud(57600)
	cpuEnd.SetBaud(57600)

	// helix answers the modem: it exports its name space over the
	// serial byte stream.
	if err := helix.AttachUART(1, cpuEnd); err != nil {
		log.Fatal(err)
	}
	go exportfs.Serve(ninep.NewStreamConn(endRWC{cpuEnd}), helix.NS, "/")

	// The home machine: not in the world at all, just a name space
	// and the serial port.
	home := ns.New("philw", ramfs.New("philw").Root())
	cl, err := exportfs.Import(home, ninep.NewStreamConn(endRWC{homeEnd}), "", "/n/helix", ns.MREPL)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Put a day's work on the CPU server (as if it were always there).
	text := strings.Repeat("all work and no play makes plan 9 a dull system\n", 400)
	if err := home.WriteFile("/n/helix/tmp/novel.txt", []byte(text), 0664); err != nil {
		log.Fatal(err)
	}

	// The wrong way at 56k: pull the whole file home.
	//netvet:ignore realtime example measures real wall time
	start := time.Now()
	b, err := home.ReadFile("/n/helix/tmp/novel.txt")
	if err != nil {
		log.Fatal(err)
	}
	//netvet:ignore realtime example measures real wall time
	pull := time.Since(start)
	fmt.Printf("pulling %d bytes over the serial line: %v\n", len(b), pull)

	// The right way: do the work on the CPU server and move only the
	// result. Here the "computation" is wc -l, run where the data is.
	//netvet:ignore realtime example measures real wall time
	start = time.Now()
	lines := 0
	{
		// Remote process on helix, local to the data.
		fd, err := helix.NS.Open("/tmp/novel.txt", vfs.OREAD)
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, 32*1024)
		for {
			n, err := fd.Read(buf)
			lines += strings.Count(string(buf[:n]), "\n")
			if err != nil {
				break
			}
		}
		fd.Close()
		helix.NS.WriteFile("/tmp/novel.count", []byte(fmt.Sprint(lines)), 0664)
	}
	cnt, err := home.ReadFile("/n/helix/tmp/novel.count")
	if err != nil {
		log.Fatal(err)
	}
	//netvet:ignore realtime example measures real wall time
	remote := time.Since(start)
	fmt.Printf("running wc on the CPU server and fetching the count: %v (%s lines)\n", remote, cnt)
	fmt.Printf("the slow link moved %d bytes instead of %d\n", len(cnt), len(b))
}
