// Ftpfs: §6.2 — "our command, ftpfs, dials the FTP port of a remote
// system, prompts for login and password, sets image mode, and mounts
// the remote file system onto /n/ftp."
//
// bootes runs the FTP service; musca mounts it and uses ordinary file
// operations — plus the cache that "reduces traffic".
//
//	go run ./examples/ftpfs
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ftp"
)

func main() {
	world, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	bootes := world.Machine("bootes")
	musca := world.Machine("musca")

	// The remote system's FTP service over the simulated TCP.
	bootes.Root.WriteFile("pub/README", []byte("Plan 9 distribution\n"), 0664)
	bootes.Root.WriteFile("pub/sys/src/9/il.c", []byte("/* 847 lines */\n"), 0664)
	if _, err := bootes.ServeFTP("tcp!*!ftp", "/", ftp.ServerConfig{User: "glenda", Pass: "rabbit"}); err != nil {
		log.Fatal(err)
	}

	// ftpfs: dial, log in, mount on /n/ftp.
	if _, err := musca.MountFTP("tcp!bootes!ftp", "glenda", "rabbit", "/n/ftp"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("musca$ ls /n/ftp/pub")
	ents, err := musca.NS.ReadDir("/n/ftp/pub")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ents {
		kind := "file"
		if e.IsDir() {
			kind = "dir "
		}
		fmt.Printf("  %s %-10s %d bytes\n", kind, e.Name, e.Length)
	}

	b, err := musca.NS.ReadFile("/n/ftp/pub/README")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("musca$ cat /n/ftp/pub/README\n  %s", b)

	// Writing through the mount STORs on close.
	if err := musca.NS.WriteFile("/n/ftp/pub/notes", []byte("fetched with ftpfs\n"), 0664); err != nil {
		log.Fatal(err)
	}
	back, _ := bootes.Root.ReadFile("pub/notes")
	fmt.Printf("stored on the server: %q\n", back)
}
