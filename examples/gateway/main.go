// Gateway: the §6.1 scenario. philw's gnot is a terminal with only a
// Datakit connection; importing /net from helix makes all of helix's
// networks appear locally, and TCP destinations become dialable
// through the gateway:
//
//	import -a helix /net
//	telnet ai.mit.edu
//
//	go run ./examples/gateway
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/mnt"
	"repro/internal/ninep"
	"repro/internal/ns"
)

func main() {
	window := flag.Int("window", ninep.DefaultWindow,
		"9P fragment window for write-behind depth on the import's client")
	clients := flag.Int("clients", 0,
		"extra tenants: each imports helix's /lib/ndb through the gateway and reads the database; afterwards the per-connection bill is read from helix's /net/export/stats — through the import")
	flag.Parse()

	world, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	gnot := world.Machine("philw-gnot")

	lsNet := func(label string) {
		names := gnot.LsNet()
		sort.Strings(names)
		fmt.Printf("%s$ ls /net\n", label)
		for _, n := range names {
			fmt.Printf("  /net/%s\n", n)
		}
	}

	lsNet("philw-gnot")

	// TCP is unreachable: the terminal has no IP networks.
	if _, err := dialer.Dial(gnot.NS, "tcp!helix!echo"); err != nil {
		fmt.Printf("tcp!helix!echo before import: %v\n", err)
	}

	// import -a helix /net — over the Datakit, since that is all the
	// terminal has. The union places remote entries after local ones.
	// A /net import is a live device tree, so it deliberately does NOT
	// opt into windowed transfers: fanning a read into speculative
	// Treads would consume stream data past a message boundary. The
	// pipelining a device import does get is tag-level — every process
	// using the import runs its RPCs concurrently across both hops of
	// the relay — plus the window as write-behind depth if a mount
	// opts in. Mount a plain file tree with mnt.FileConfig() to fan
	// large transfers into concurrent fragments as well.
	fmt.Printf("philw-gnot$ import -a helix /net  # window %d\n", *window)
	cfg := mnt.Config{Client: ninep.ClientConfig{Window: *window}}
	if _, err := gnot.ImportConfig("dk!nj/astro/helix!exportfs", "/net", "/net", ns.MAFTER, cfg); err != nil {
		log.Fatal(err)
	}

	lsNet("philw-gnot")

	// "All the networks connected to helix, not just Datakit, are now
	// available in the terminal": dialing TCP now opens helix's clone
	// file through the import and the connection is relayed by the
	// gateway's kernel.
	conn, err := dialer.Dial(gnot.NS, "tcp!helix!echo")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("tcp by way of the datakit"))
	buf := make([]byte, 128)
	n, _ := conn.Read(buf)
	fmt.Printf("echo over tcp through the gateway: %q\n", buf[:n])

	// Remote diagnosis (§6.1): the terminal has no TCP of its own, so
	// /net/tcp/stats resolves to HELIX's stats file through the
	// import — every line below crossed the Datakit as a 9P Tread.
	// The segment counters include the echo we just ran.
	b, err := gnot.NS.ReadFile("/net/tcp/stats")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("philw-gnot$ cat /net/tcp/stats   # helix's, over the import\n")
	for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		fmt.Printf("  %s\n", line)
	}

	// And the terminal's own mount driver accounts for the RPCs that
	// import carried: /net/mnt resolves locally (the union places the
	// terminal's entries first).
	b, err = gnot.NS.ReadFile("/net/mnt/stats")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("philw-gnot$ cat /net/mnt/stats   # the import's own RPC bill\n")
	for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		fmt.Printf("  %s\n", line)
	}

	// -clients N: the multi-tenant half of the story. N more tenants
	// attach to the same gateway server, each over its own connection,
	// and read the same file; the first fill populates the shared
	// cache and every later tenant rides it. The gateway's stats file
	// itemizes each connection — and since helix's /net/export/stats
	// sits inside the imported /net, the bill itself arrives over the
	// Datakit as 9P reads.
	if *clients > 0 {
		fmt.Printf("philw-gnot$ for i in `seq %d`; do import helix /lib/ndb /n/c$i && cat /n/c$i/local; done >/dev/null\n", *clients)
		// The imports stay mounted while the bill is read, so every
		// tenant shows as an open connection with its own line; the
		// world's shutdown closes them.
		for i := 0; i < *clients; i++ {
			mp := fmt.Sprintf("/n/c%d", i)
			if _, err := gnot.ImportConfig("dk!nj/astro/helix!exportfs", "/lib/ndb", mp, ns.MREPL, mnt.FileConfig()); err != nil {
				log.Fatal(err)
			}
			if _, err := gnot.NS.ReadFile(mp + "/local"); err != nil {
				log.Fatal(err)
			}
		}
		b, err = gnot.NS.ReadFile("/net/export/stats")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("philw-gnot$ cat /net/export/stats   # helix's per-connection bill, over the import\n")
		for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
}
