// Quickstart: boot the paper's network, dial the echo service over
// the network of CS's choice, and exchange a message — the minimal
// end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dialer"
)

func main() {
	// A World holds the shared media and database; PaperWorld boots
	// the topology from the paper (file server, CPU servers, a
	// Datakit-only terminal, DNS).
	world, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	musca := world.Machine("musca")

	// The special network name "net" lets the connection server pick
	// any network in common with the destination (§5.1). Here musca
	// and helix share both IL/Ethernet and Datakit; CS prefers IL.
	conn, err := dialer.Dial(musca.NS, "net!helix!echo")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	fmt.Printf("dialed helix; connection directory %s\n", conn.Dir)
	fmt.Printf("local  %s\n", conn.LocalAddr(musca.NS))
	fmt.Printf("remote %s\n", conn.RemoteAddr(musca.NS))

	msg := "hello from musca"
	if _, err := conn.Write([]byte(msg)); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 128)
	n, err := conn.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echoed: %q\n", buf[:n])

	// The same connection is visible as files, §2.3 style.
	status, _ := musca.NS.ReadFile(conn.Dir + "/status")
	fmt.Printf("status: %s", status)
}
