// Cpu: the shape of the paper's cpu command (§6): "rather than
// emulating a terminal session across the network, cpu creates a
// process on the remote machine whose name space is an analogue of the
// window in which it was invoked. Exportfs ... is used by the cpu
// command to serve the files in the terminal's name space when they
// are accessed from the cpu server."
//
// Here musca plays the terminal and helix the CPU server. The terminal
// dials the cpu service and then serves its own name space over the
// same connection with exportfs; the remote "process" (a goroutine in
// a cloned name space on helix) mounts it at /mnt/term, reads the
// terminal's files, and writes its output back into the terminal's
// /tmp — exactly how cpu makes the window's files visible remotely.
//
//	go run ./examples/cpu
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/exportfs"
	"repro/internal/mnt"
	"repro/internal/ninep"
	"repro/internal/ns"
)

func main() {
	world, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	helix := world.Machine("helix")
	musca := world.Machine("musca")

	// The CPU server's listener: each call is a remote session whose
	// far end serves the terminal's name space via 9P.
	done := make(chan string, 1)
	if _, err := helix.Serve("il!*!cpu", func(nsp *ns.Namespace, conn *dialer.Conn) {
		// The terminal end is an exportfs server: mount it.
		root, cl, err := mnt.Mount(ninep.NewDelimConn(conn), nsp.User(), "")
		if err != nil {
			done <- "mount: " + err.Error()
			return
		}
		defer cl.Close()
		if err := nsp.MountNode(root, "/mnt/term", ns.MREPL); err != nil {
			done <- err.Error()
			return
		}
		// The "remote process": read the terminal's file, compute,
		// write the result back into the terminal's /tmp.
		b, err := nsp.ReadFile("/mnt/term/tmp/job")
		if err != nil {
			done <- err.Error()
			return
		}
		result := strings.ToUpper(string(b)) + " (processed on " + "helix)"
		if err := nsp.WriteFile("/mnt/term/tmp/job.out", []byte(result), 0664); err != nil {
			done <- err.Error()
			return
		}
		done <- "ok"
	}); err != nil {
		log.Fatal(err)
	}

	// The terminal: put some work in the window's name space, dial
	// cpu, and serve the name space across the call.
	if err := musca.NS.WriteFile("/tmp/job", []byte("compile the chess endgames"), 0664); err != nil {
		log.Fatal(err)
	}
	conn, err := dialer.Dial(musca.NS, "il!helix!cpu")
	if err != nil {
		log.Fatal(err)
	}
	go exportfs.Serve(ninep.NewDelimConn(conn), musca.NS, "/")

	if msg := <-done; msg != "ok" {
		log.Fatal(msg)
	}
	out, err := musca.NS.ReadFile("/tmp/job.out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("terminal submitted: compile the chess endgames\n")
	fmt.Printf("terminal received:  %s\n", out)
	conn.Close()
}
