// Ndbtour: the network database and connection server of §4 — the
// attribute walk (system, then subnetwork, then network), service
// ports, meta-names, and the DNS path.
//
//	go run ./examples/ndbtour
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/vfs"
)

func main() {
	world, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	db := world.DB()
	helix := world.Machine("helix")

	// Direct database queries.
	fmt.Println("# ndb queries")
	if e, ok := db.QueryOne("sys", "helix"); ok {
		dom, _ := e.Get("dom")
		ip, _ := e.Get("ip")
		dk, _ := e.Get("dk")
		fmt.Printf("sys=helix: dom=%s ip=%s dk=%s\n", dom, ip, dk)
	}
	// The most-closely-associated walk: helix has no auth attribute
	// of its own; it inherits the network's.
	if v, ok := db.IPInfo("helix", "auth"); ok {
		fmt.Printf("auth for helix (from the network entry): %s\n", v)
	}
	if v, ok := db.IPInfo("helix", "fs"); ok {
		fmt.Printf("fs for helix: %s\n", v)
	}
	// Service ports.
	if p, ok := db.ServicePort("il", "9fs"); ok {
		fmt.Printf("il!...!9fs uses port %s\n", p)
	}

	// csquery-style translations through /net/cs.
	fmt.Println("\n# /net/cs translations (ndb/csquery)")
	for _, q := range []string{"net!helix!9fs", "net!$auth!rexauth", "tcp!bootes!ftp"} {
		fmt.Printf("> %s\n", q)
		lines, err := helix.NdbQuery(q)
		if err != nil {
			fmt.Println("!", err)
			continue
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	}

	// The DNS path: /net/dns answers recursive queries.
	fmt.Println("\n# /net/dns")
	fd, err := helix.NS.Open("/net/dns", vfs.ORDWR)
	if err != nil {
		log.Fatal(err)
	}
	defer fd.Close()
	for _, q := range []string{"musca.research.bell-labs.com ip", "fs.research.bell-labs.com ip"} {
		fmt.Printf("> %s\n", q)
		if _, err := fd.WriteString(q); err != nil {
			fmt.Println("!", err)
			continue
		}
		buf := make([]byte, 256)
		for {
			n, _ := fd.ReadAt(buf, 0)
			if n == 0 {
				break
			}
			fmt.Print(string(buf[:n]))
		}
	}
}
