// Command snoopy is the snooping diagnostic of §2.2: the Ethernet
// driver provides "diagnostic interfaces for snooping software" —
// writing "promiscuous" and "connect -1" to a conversation's ctl file
// makes it receive a copy of every frame on the wire. snoopy attaches
// such a conversation on the paper world's office Ethernet, stirs up
// some traffic, and decodes what it captures: Ethernet, ARP, IP, IL,
// TCP, and UDP headers.
//
//	go run ./cmd/snoopy -frames 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/netmsg"
	"repro/internal/streams"
	"repro/internal/vfs"
)

func main() {
	frames := flag.Int("frames", 16, "frames to capture")
	flag.Parse()

	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		fmt.Fprintln(os.Stderr, "snoopy:", err)
		os.Exit(1)
	}
	defer w.Close()
	aroot := w.Machine("a-root") // a quiet machine to snoop from

	// The §2.2 incantation, through the file tree.
	ctl, err := aroot.NS.Open("/net/ether0/clone", vfs.ORDWR)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snoopy:", err)
		os.Exit(1)
	}
	defer ctl.Close()
	buf := make([]byte, 16)
	n, _ := ctl.Read(buf)
	dir := "/net/ether0/" + string(buf[:n])
	ctl.WriteString(netmsg.Connect("-1"))
	ctl.WriteString(netmsg.Promiscuous())
	data, err := aroot.NS.Open(dir+"/data", vfs.OREAD)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snoopy:", err)
		os.Exit(1)
	}
	defer data.Close()

	// Stir up traffic: an IL echo, a TCP dial, and a DNS query. The
	// generator is joined to main's lifetime through stop so the world
	// is not torn down under a dial in flight.
	stop := make(chan struct{})
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		musca := w.Machine("musca")
		for {
			if conn, err := dialer.Dial(musca.NS, "il!helix!echo"); err == nil {
				conn.Write([]byte("snooped!"))
				b := make([]byte, 64)
				conn.Read(b)
				conn.Close()
			}
			if conn, err := dialer.Dial(musca.NS, "tcp!helix!discard"); err == nil {
				conn.Write([]byte("tcp payload"))
				conn.Close()
			}
			musca.Resolver.LookupA("p9auth.research.bell-labs.com")
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond): //netvet:ignore realtime paces reads of the real process's trace output
			}
		}
	}()

	frame := make([]byte, 4096)
	for i := 0; i < *frames; i++ {
		n, err := data.Read(frame)
		if err != nil || n == 0 {
			break
		}
		fmt.Println(decode(frame[:n]))
	}
	close(stop)
	<-trafficDone
}

// decode renders one captured frame, layer by layer.
func decode(f []byte) string {
	if len(f) < ether.HdrLen {
		return fmt.Sprintf("runt frame (%d bytes)", len(f))
	}
	var dst, src ether.Addr
	copy(dst[:], f[0:6])
	copy(src[:], f[6:12])
	etype := int(f[12])<<8 | int(f[13])
	head := fmt.Sprintf("ether(%s -> %s", src, dst)
	payload := f[ether.HdrLen:]
	switch etype {
	case ether.TypeARP:
		return head + ") " + decodeARP(payload)
	case ether.TypeIP:
		return head + ") " + decodeIP(payload)
	default:
		return fmt.Sprintf("%s type %#x) %d bytes", head, etype, len(payload))
	}
}

func decodeARP(p []byte) string {
	if len(p) < 28 {
		return "arp(short)"
	}
	var sip, tip ip.Addr
	copy(sip[:], p[14:18])
	copy(tip[:], p[24:28])
	if p[7] == 2 {
		var hw ether.Addr
		copy(hw[:], p[8:14])
		return fmt.Sprintf("arp(reply %s is-at %s)", sip, hw)
	}
	return fmt.Sprintf("arp(request who-has %s tell %s)", tip, sip)
}

func decodeIP(p []byte) string {
	h, body, err := ip.Unmarshal(p)
	if err != nil {
		return "ip(bad header)"
	}
	head := fmt.Sprintf("ip(%s -> %s ttl %d", h.Src, h.Dst, h.TTL)
	switch h.Proto {
	case ip.ProtoIL:
		return head + ") " + decodeIL(body)
	case ip.ProtoTCP:
		return head + ") " + decodeTCP(body)
	case ip.ProtoUDP:
		return head + ") " + decodeUDP(body)
	default:
		return fmt.Sprintf("%s proto %d) %d bytes", head, h.Proto, len(body))
	}
}

var ilTypes = []string{"Sync", "Data", "Ack", "Query", "State", "Close"}

func decodeIL(p []byte) string {
	if len(p) < 18 {
		return "il(short)"
	}
	typ := int(p[4])
	name := "?"
	if typ < len(ilTypes) {
		name = ilTypes[typ]
	}
	src := int(p[6])<<8 | int(p[7])
	dst := int(p[8])<<8 | int(p[9])
	id := uint32(p[10])<<24 | uint32(p[11])<<16 | uint32(p[12])<<8 | uint32(p[13])
	ack := uint32(p[14])<<24 | uint32(p[15])<<16 | uint32(p[16])<<8 | uint32(p[17])
	return fmt.Sprintf("il(%s %d -> %d id %d ack %d, %d data)",
		name, src, dst, id, ack, len(p)-18) + discipline(p[18:])
}

// discipline annotates a transport payload dressed by the batch or
// compress line disciplines (§2.4): the modules' wire formats are
// self-describing enough to name from a raw capture.
func discipline(body []byte) string {
	if d, ok := streams.SnoopPayload(body); ok {
		return " " + d
	}
	return ""
}

func decodeTCP(p []byte) string {
	if len(p) < 18 {
		return "tcp(short)"
	}
	src := int(p[0])<<8 | int(p[1])
	dst := int(p[2])<<8 | int(p[3])
	flags := p[12]
	fl := ""
	for i, c := range []string{"F", "S", "R", "A"} {
		if flags&(1<<i) != 0 {
			fl += c
		}
	}
	return fmt.Sprintf("tcp(%d -> %d %s, %d data)", src, dst, fl, len(p)-18) + discipline(p[18:])
}

func decodeUDP(p []byte) string {
	if len(p) < 8 {
		return "udp(short)"
	}
	src := int(p[0])<<8 | int(p[1])
	dst := int(p[2])<<8 | int(p[3])
	kind := ""
	if src == 53 || dst == 53 {
		kind = " dns"
	}
	return fmt.Sprintf("udp(%d -> %d%s, %d data)", src, dst, kind, len(p)-8)
}
