// Command ndbquery queries the network database directly (§4.1), like
// ndb/query: given an attribute and value it prints matching entries,
// and with a third argument it returns that attribute resolved through
// the system → subnetwork → network walk.
//
//	ndbquery sys helix
//	ndbquery sys helix auth
//	ndbquery -f mydb.ndb dom helix.research.bell-labs.com
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ndb"
)

func main() {
	file := flag.String("f", "", "database file (default: the paper's)")
	flag.Parse()
	if flag.NArg() != 2 && flag.NArg() != 3 {
		fmt.Fprintln(os.Stderr, "usage: ndbquery [-f db] attr value [rattr]")
		os.Exit(2)
	}
	src := []byte(core.PaperNdb)
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndbquery:", err)
			os.Exit(1)
		}
		src = b
	}
	f, err := ndb.Parse("db", src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndbquery:", err)
		os.Exit(1)
	}
	db := ndb.New(f)
	db.HashAll(flag.Arg(0))

	attr, val := flag.Arg(0), flag.Arg(1)
	if flag.NArg() == 3 {
		rattr := flag.Arg(2)
		v, ok := db.IPInfo(val, rattr)
		if !ok {
			fmt.Fprintf(os.Stderr, "ndbquery: no %s for %s\n", rattr, val)
			os.Exit(1)
		}
		fmt.Printf("%s=%s\n", rattr, v)
		return
	}
	entries := db.Query(attr, val)
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "ndbquery: no match")
		os.Exit(1)
	}
	for _, e := range entries {
		fmt.Println(e.String())
	}
}
