// Command netvet is the repo's concurrency and resource-lifecycle
// analyzer: a stdlib-only static checker (go/ast + go/types, no
// x/tools) enforcing the invariants the paper's stream/mux
// architecture depends on. It walks the whole module and reports:
//
//	lock-across-send    mutex held across a channel op or blocking call
//	unjoined-goroutine  goroutine with no shutdown path
//	unclosed-resource   closeable value dropped without Close
//	naked-ctl-string    ctl literal bypassing the netmsg helpers
//
// Usage:
//
//	go run ./cmd/netvet ./...
//	go run ./cmd/netvet -tests -checks lock-across-send ./...
//
// Deliberate exceptions carry a `//netvet:ignore <check> <why>`
// directive on the offending line (or the line above); suppressed
// findings are counted in the summary so they stay reviewable.
// Exit status is 1 when unsuppressed diagnostics remain.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	checksFlag := flag.String("checks", "", "comma-separated checks to run (default: all)")
	quiet := flag.Bool("q", false, "suppress the summary line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: netvet [-tests] [-checks list] [./... | dir]\nchecks: %s\n",
			strings.Join(analysis.CheckNames(), ", "))
	}
	flag.Parse()

	root, err := moduleRoot(flag.Args())
	if err != nil {
		fatal(err)
	}
	checks, err := selectChecks(*checksFlag)
	if err != nil {
		fatal(err)
	}

	mod, err := analysis.LoadModule(root, *tests)
	if err != nil {
		fatal(err)
	}
	res := analysis.Run(mod, checks)
	for _, d := range res.Diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Check, d.Message)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "netvet: %d package(s), %d diagnostic(s)%s\n",
			len(mod.Pkgs), len(res.Diags), suppressedSummary(res))
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot resolves the argument (./..., a directory, or nothing)
// to the nearest enclosing directory holding go.mod.
func moduleRoot(args []string) (string, error) {
	dir := "."
	for _, a := range args {
		if a == "./..." || a == "..." {
			continue
		}
		dir = strings.TrimSuffix(a, "/...")
		break
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("netvet: no go.mod at or above %s", dir)
		}
	}
}

func selectChecks(list string) ([]*analysis.Check, error) {
	all := analysis.Checks()
	if list == "" {
		return all, nil
	}
	byName := map[string]*analysis.Check{}
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*analysis.Check
	for _, name := range strings.Split(list, ",") {
		c := byName[strings.TrimSpace(name)]
		if c == nil {
			return nil, fmt.Errorf("netvet: unknown check %q (have %s)",
				name, strings.Join(analysis.CheckNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

func suppressedSummary(res *analysis.Result) string {
	if len(res.Suppressed) == 0 {
		return ""
	}
	var parts []string
	for name, n := range res.Suppressed {
		parts = append(parts, fmt.Sprintf("%s %d", name, n))
	}
	sort.Strings(parts)
	return ", suppressed: " + strings.Join(parts, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
