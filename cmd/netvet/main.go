// Command netvet is the repo's concurrency and resource-lifecycle
// analyzer: a stdlib-only static checker (go/ast + go/types, no
// x/tools) enforcing the invariants the paper's stream/mux
// architecture depends on. It walks the whole module and reports:
//
//	lock-across-send    mutex held across a channel op or blocking call
//	unjoined-goroutine  goroutine with no shutdown path
//	unclosed-resource   closeable value dropped without Close
//	naked-ctl-string    ctl literal bypassing the netmsg helpers
//
// Usage:
//
//	go run ./cmd/netvet ./...
//	go run ./cmd/netvet -tests -checks lock-across-send ./...
//	go run ./cmd/netvet -json ./...
//
// Deliberate exceptions carry a `//netvet:ignore <checks> <why>`
// directive on the offending line (or the line above); suppressed
// findings are counted in the summary so they stay reviewable, and
// -ignored lists each one with the directive that silenced it. -json
// emits the whole report (live and suppressed findings, directives)
// as one JSON document for tooling.
// Exit status is 1 when unsuppressed diagnostics remain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	checksFlag := flag.String("checks", "", "comma-separated checks to run (default: all)")
	quiet := flag.Bool("q", false, "suppress the summary line")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	ignored := flag.Bool("ignored", false, "also list suppressed findings and the directives that silenced them")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: netvet [-tests] [-checks list] [-json] [-ignored] [./... | dir]\nchecks: %s\n",
			strings.Join(analysis.CheckNames(), ", "))
	}
	flag.Parse()

	root, err := moduleRoot(flag.Args())
	if err != nil {
		fatal(err)
	}
	checks, err := selectChecks(*checksFlag)
	if err != nil {
		fatal(err)
	}

	mod, err := analysis.LoadModule(root, *tests)
	if err != nil {
		fatal(err)
	}
	res := analysis.Run(mod, checks)
	if *jsonOut {
		if err := writeJSON(os.Stdout, root, res); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range res.Diags {
			fmt.Printf("%s: %s: %s\n", relPos(root, d.Pos), d.Check, d.Message)
		}
		if *ignored {
			for _, sd := range res.Ignored {
				fmt.Printf("%s: %s: %s (suppressed at %s: %s)\n",
					relPos(root, sd.Pos), sd.Check, sd.Message,
					relPos(root, sd.By.Pos), sd.By.Reason)
			}
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "netvet: %d package(s), %d diagnostic(s)%s\n",
			len(mod.Pkgs), len(res.Diags), suppressedSummary(res))
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

// relPos rewrites a position's filename relative to the module root
// when it lies inside it.
func relPos(root string, pos token.Position) token.Position {
	if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return pos
}

// jsonDiag is one finding in -json output; IgnoredBy is present only
// on suppressed findings.
type jsonDiag struct {
	Check     string         `json:"check"`
	Pos       string         `json:"pos"`
	Message   string         `json:"message"`
	IgnoredBy *jsonDirective `json:"ignored-by,omitempty"`
}

type jsonDirective struct {
	Pos     string   `json:"pos"`
	Checks  []string `json:"checks"`
	Reason  string   `json:"reason"`
	Matched int      `json:"matched"`
}

type jsonReport struct {
	Diagnostics []jsonDiag      `json:"diagnostics"`
	Ignored     []jsonDiag      `json:"ignored"`
	Directives  []jsonDirective `json:"directives"`
}

func writeJSON(w io.Writer, root string, res *analysis.Result) error {
	rep := jsonReport{
		Diagnostics: []jsonDiag{},
		Ignored:     []jsonDiag{},
		Directives:  []jsonDirective{},
	}
	for _, d := range res.Diags {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
			Check: d.Check, Pos: relPos(root, d.Pos).String(), Message: d.Message,
		})
	}
	for _, sd := range res.Ignored {
		by := directiveJSON(root, sd.By)
		rep.Ignored = append(rep.Ignored, jsonDiag{
			Check: sd.Check, Pos: relPos(root, sd.Pos).String(), Message: sd.Message,
			IgnoredBy: &by,
		})
	}
	for _, dir := range res.Directives {
		rep.Directives = append(rep.Directives, directiveJSON(root, dir))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(rep)
}

func directiveJSON(root string, d *analysis.Directive) jsonDirective {
	return jsonDirective{
		Pos: relPos(root, d.Pos).String(), Checks: d.Checks,
		Reason: d.Reason, Matched: d.Matched,
	}
}

// moduleRoot resolves the argument (./..., a directory, or nothing)
// to the nearest enclosing directory holding go.mod.
func moduleRoot(args []string) (string, error) {
	dir := "."
	for _, a := range args {
		if a == "./..." || a == "..." {
			continue
		}
		dir = strings.TrimSuffix(a, "/...")
		break
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("netvet: no go.mod at or above %s", dir)
		}
	}
}

func selectChecks(list string) ([]*analysis.Check, error) {
	all := analysis.Checks()
	if list == "" {
		return all, nil
	}
	byName := map[string]*analysis.Check{}
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*analysis.Check
	for _, name := range strings.Split(list, ",") {
		c := byName[strings.TrimSpace(name)]
		if c == nil {
			return nil, fmt.Errorf("netvet: unknown check %q (have %s)",
				name, strings.Join(analysis.CheckNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

func suppressedSummary(res *analysis.Result) string {
	if len(res.Suppressed) == 0 {
		return ""
	}
	var parts []string
	for name, n := range res.Suppressed {
		parts = append(parts, fmt.Sprintf("%s %d", name, n))
	}
	sort.Strings(parts)
	return ", suppressed: " + strings.Join(parts, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
