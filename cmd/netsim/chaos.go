package main

import (
	"fmt"
	"time"

	"repro/internal/medium"
	"repro/internal/torture"
)

// chaosScenario builds the impairment cocktail for one protocol of
// the torture matrix. Every fault class the protocol's medium can
// express is on; the per-protocol adjustments track the contracts of
// the real hardware (§2.3, §7): Datakit circuits deliver cells
// ordered or not at all, and the Cyclone boards are reliable, so only
// delay variation reaches them.
func chaosScenario(proto string, seed int64, msgs int) torture.Scenario {
	s := torture.Scenario{
		Proto:  proto,
		Seed:   seed,
		Msgs:   msgs,
		Back:   msgs / 2,
		MaxMsg: 700,
		Loss:   0.02,
		Impair: medium.Impairment{
			Duplicate:    0.03,
			Reorder:      0.05,
			ReorderDepth: 3,
			Corrupt:      0.05,
			CorruptBits:  2,
			BurstP:       0.004,
			BurstR:       0.4,
			Partitions:   []medium.Window{{From: 120, To: 140}, {From: 300, To: 315}},
		},
		Timeout: 25 * time.Second,
	}
	switch proto {
	case torture.ProtoURP:
		s.Impair.Reorder = 0
		s.Impair.ReorderDepth = 0
		s.Impair.Duplicate = 0
		s.Impair.Partitions = []medium.Window{{From: 80, To: 95}}
	case torture.ProtoCyclone:
		s.Loss = 0
		s.Impair = medium.Impairment{Jitter: 200 * time.Microsecond}
	}
	return s
}

// runChaos runs the full torture matrix and prints a report per
// protocol; a failing scenario is shrunk to its minimal reproduction
// before the command exits nonzero.
func runChaos(seed int64, msgs int) int {
	failed := 0
	for _, proto := range torture.Protos {
		s := chaosScenario(proto, seed, msgs)
		rep := torture.Run(s)
		fmt.Print(rep)
		if rep.Failed() {
			failed++
			minimal, runs := torture.Shrink(s, func(c torture.Scenario) bool {
				return torture.Run(c).Failed()
			}, 60)
			fmt.Printf("  minimal reproduction (%d shrink runs):\n    %s\n", runs, minimal)
		}
	}
	return failed
}
