package main

import (
	"fmt"
	"strings"

	"repro/internal/torture"
)

// runChaos runs the full torture matrix — msgs messages per direction
// over the standard impairment cocktail (torture.Chaos) — once per
// seed in [seed, seed+seeds), and prints a report per protocol. With
// virtual set the scenarios run on the discrete-event clock, so a
// multi-seed sweep costs wall-clock seconds. mods is a comma-separated
// list of line-discipline specs ("compress,batch 1024 2ms") pushed on
// both ends of every conversation. A failing scenario is shrunk to its
// minimal reproduction before the command exits nonzero.
func runChaos(seed int64, msgs, seeds int, virtual bool, mods string) int {
	if seeds < 1 {
		seeds = 1
	}
	var specs []string
	for _, m := range strings.Split(mods, ",") {
		if m = strings.TrimSpace(m); m != "" {
			specs = append(specs, m)
		}
	}
	failed := 0
	for sd := seed; sd < seed+int64(seeds); sd++ {
		for _, proto := range torture.Protos {
			s := torture.Chaos(proto, sd, msgs)
			s.Virtual = virtual
			s.Mods = specs
			rep := torture.Run(s)
			if seeds > 1 {
				// Sweeps stay terse: one line per passing scenario.
				if !rep.Failed() {
					fmt.Printf("torture %s seed=%d: ok (%d+%d msgs, %d retransmits, elapsed %v)\n",
						proto, sd, rep.Forward.Msgs, rep.Backward.Msgs, rep.Retransmits, rep.Elapsed)
				} else {
					fmt.Print(rep)
				}
			} else {
				fmt.Print(rep)
			}
			if rep.Failed() {
				failed++
				minimal, runs := torture.Shrink(s, func(c torture.Scenario) bool {
					return torture.Run(c).Failed()
				}, 60)
				fmt.Printf("  minimal reproduction (%d shrink runs):\n    %s\n", runs, minimal)
			}
		}
	}
	return failed
}
