// Command netsim boots the paper's world and reproduces its figures
// and transcripts:
//
//	netsim -figure1    print the ether device file tree of Figure 1
//	netsim -transcript run the §2.3 TCP transcript (cd /net/tcp/2; ls -l; cat local remote status)
//	netsim -import     run the §6.1 import transcript (ls /net before/after)
//	netsim -table1     measure Table 1 on calibrated media (see also bench_test.go)
//	netsim -chaos      torture IL, TCP, URP, 9P and Cyclone across impaired media
//	netsim -virtual    boot a 1000-machine Datakit world on the discrete-event
//	                   clock and run the registry storm (see -machines, -simtime)
//	netsim -virtual -gateway
//	                   same world, but every machine repeatedly imports one
//	                   exporter's tree through the multi-tenant gateway and
//	                   reads a shared file; reports the shared-cache bill
//	netsim -virtual -registry
//	                   same world, but with no stagger: every machine dials
//	                   the registry by symbolic name at t=0, several dialers
//	                   apiece, and the run reports the merged /net/cs books
//	                   (hit rates, negative cache, query-latency p50/p99)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/mnt"
	"repro/internal/netmsg"
	"repro/internal/ns"
	"repro/internal/storm"
	"repro/internal/table1"
	"repro/internal/vfs"
)

func main() {
	figure1 := flag.Bool("figure1", false, "print the Figure 1 ether file tree")
	transcript := flag.Bool("transcript", false, "run the §2.3 TCP connection transcript")
	imp := flag.Bool("import", false, "run the §6.1 import transcript")
	table := flag.Bool("table1", false, "reproduce Table 1 on calibrated media")
	fast := flag.Bool("fast", false, "with -table1: ideal media (code-path cost only)")
	jsonOut := flag.Bool("json", false, "with -table1: emit a JSON snapshot (rows + allocator + mount-driver stats)")
	chaos := flag.Bool("chaos", false, "torture every protocol across impaired media")
	seed := flag.Int64("seed", 1, "with -chaos/-virtual: impairment seed (failures replay exactly)")
	msgs := flag.Int("msgs", 40, "with -chaos: messages per direction")
	seeds := flag.Int("seeds", 1, "with -chaos: sweep this many consecutive seeds")
	mods := flag.String("mods", "", "with -chaos: comma-separated line disciplines pushed on both ends (e.g. \"compress,batch 1024 2ms\")")
	virtual := flag.Bool("virtual", false, "run on the discrete-event clock; alone, boots the -machines Datakit world and runs the registry storm")
	gateway := flag.Bool("gateway", false, "with -virtual: run the gateway storm — every machine imports one exporter through the multi-tenant server")
	registry := flag.Bool("registry", false, "with -virtual: run the t=0 dial storm — every machine dials the registry by name through /net/cs at once")
	nmach := flag.Int("machines", 1000, "with -virtual: machines to boot besides the registry")
	simtime := flag.Duration("simtime", 75*time.Second, "with -virtual: simulated duration of the registry storm")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	flag.Parse()

	if !*figure1 && !*transcript && !*imp && !*table && !*chaos && !*virtual {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
	}
	// The profile writers run on every exit path below, so the run
	// modes defer through this instead of calling os.Exit directly.
	exitCode := 0
	defer func() {
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err == nil {
				runtime.GC()
				pprof.Lookup("heap").WriteTo(f, 0)
				f.Close()
			}
		}
		if *blockprofile != "" {
			f, err := os.Create(*blockprofile)
			if err == nil {
				pprof.Lookup("block").WriteTo(f, 0)
				f.Close()
			}
		}
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()
	if *chaos {
		if failed := runChaos(*seed, *msgs, *seeds, *virtual, *mods); failed > 0 {
			fmt.Fprintf(os.Stderr, "netsim: chaos: %d scenarios failed\n", failed)
			exitCode = 1
		}
		return
	}
	if *virtual {
		cfg := storm.Config{
			Machines: *nmach,
			Sim:      *simtime,
			Seed:     *seed,
			Virtual:  true,
		}
		if *gateway {
			res, err := storm.RunGateway(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "netsim:", err)
				exitCode = 1
				return
			}
			fmt.Println(res)
			return
		}
		if *registry {
			res, err := storm.RunRegistry(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "netsim:", err)
				exitCode = 1
				return
			}
			fmt.Println(res)
			return
		}
		res, err := storm.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			exitCode = 1
			return
		}
		fmt.Println(res)
		return
	}
	if *table {
		cfg := table1.DefaultConfig()
		if *fast {
			cfg = table1.FastConfig()
		}
		res := table1.Run(cfg)
		if *jsonOut {
			// Machine-readable: the measured rows plus the
			// process-wide observability counters the run left
			// behind (allocator, mount-driver pipelining).
			type row struct {
				Name       string
				Throughput float64 // MBytes/sec
				Latency    float64 // milliseconds
				Err        string  `json:",omitempty"`
			}
			rows := make([]row, 0, len(res.Rows))
			for _, r := range res.Rows {
				jr := row{Name: r.Name, Throughput: r.Throughput, Latency: r.Latency}
				if r.Err != nil {
					jr.Err = r.Err.Error()
				}
				rows = append(rows, jr)
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{
				"table1": rows,
				"block":  block.Snapshot(),
				"mnt":    mnt.StatsGroup().Snapshot(),
			}); err != nil {
				fmt.Fprintln(os.Stderr, "netsim:", err)
				exitCode = 1
			}
			return
		}
		fmt.Print(res.Format())
		fmt.Printf("\nblock pool: %s\n", block.Snapshot())
		return
	}

	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		exitCode = 1
		return
	}
	defer w.Close()

	if *figure1 {
		printFigure1(w)
	}
	if *transcript {
		printTranscript(w)
	}
	if *imp {
		printImport(w)
	}
}

// printFigure1 opens conversations on helix's ether and walks the tree.
func printFigure1(w *core.World) {
	helix := w.Machine("helix")
	// Open a few conversations so numbered directories exist.
	var ctls []*ns.FD
	for range 2 {
		ctl, err := helix.NS.Open("/net/ether0/clone", vfs.ORDWR)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		ctl.WriteString(netmsg.Connect("2048"))
		ctls = append(ctls, ctl)
	}
	defer func() {
		for _, c := range ctls {
			c.Close()
		}
	}()
	fmt.Println("cpu% ls /net/ether0    # Figure 1")
	ents, _ := helix.NS.ReadDir("/net/ether0")
	for _, e := range ents {
		fmt.Printf("  ether0/%s\n", e.Name)
		if e.IsDir() {
			sub, _ := helix.NS.ReadDir("/net/ether0/" + e.Name)
			for _, s := range sub {
				fmt.Printf("  ether0/%s/%s\n", e.Name, s.Name)
			}
		}
	}
	b, _ := helix.NS.ReadFile("/net/ether0/1/type")
	fmt.Printf("cpu%% cat /net/ether0/1/type\n  %s\n", b)
	b, _ = helix.NS.ReadFile("/net/ether0/1/stats")
	fmt.Printf("cpu%% cat /net/ether0/1/stats\n")
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		fmt.Printf("  %s\n", line)
	}
}

// printTranscript reproduces the §2.3 connection-directory listing.
func printTranscript(w *core.World) {
	musca := w.Machine("musca")
	conn, err := dialer.Dial(musca.NS, "tcp!bootes!9fs")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		return
	}
	defer conn.Close()
	fmt.Printf("cpu%% cd %s\ncpu%% ls\n", conn.Dir)
	ents, _ := musca.NS.ReadDir(conn.Dir)
	for _, e := range ents {
		fmt.Printf("  %s\n", e.Name)
	}
	fmt.Println("cpu% cat local remote status")
	for _, f := range []string{"local", "remote", "status"} {
		b, _ := musca.NS.ReadFile(conn.Dir + "/" + f)
		fmt.Printf("  %s", b)
	}
}

// printImport reproduces the §6.1 ls /net before/after transcript.
func printImport(w *core.World) {
	gnot := w.Machine("philw-gnot")
	show := func() {
		names := gnot.LsNet()
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  /net/%s\n", n)
		}
	}
	fmt.Println("philw-gnot% ls /net")
	show()
	fmt.Println("philw-gnot% import -a helix /net")
	if _, err := gnot.Import("dk!nj/astro/helix!exportfs", "/net", "/net", ns.MAFTER); err != nil {
		fmt.Fprintln(os.Stderr, "import:", err)
		return
	}
	fmt.Println("philw-gnot% ls /net")
	show()
	// And prove the gateway works: a TCP echo through helix.
	conn, err := dialer.Dial(gnot.NS, "tcp!helix!echo")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcp through gateway:", err)
		return
	}
	defer conn.Close()
	conn.Write([]byte("hello via the gateway"))
	buf := make([]byte, 64)
	n, _ := conn.Read(buf)
	fmt.Printf("philw-gnot%% echo via tcp!helix!echo -> %q\n", buf[:n])
}
