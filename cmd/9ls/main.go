// Command 9ls walks a machine's name space in the paper world and
// lists or prints files — a small ls/cat over the composed view,
// useful for poking at the device trees:
//
//	9ls -on helix /net
//	9ls -on helix /net/tcp
//	9ls -on helix -cat /net/cs? (use -cat for file contents)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/vfs"
)

func main() {
	machine := flag.String("on", "helix", "machine whose name space to use")
	cat := flag.Bool("cat", false, "print file contents instead of listing")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: 9ls [-on machine] [-cat] path...")
		os.Exit(2)
	}
	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		fmt.Fprintln(os.Stderr, "9ls:", err)
		os.Exit(1)
	}
	defer w.Close()
	m := w.Machine(*machine)
	if m == nil {
		fmt.Fprintf(os.Stderr, "9ls: no machine %q\n", *machine)
		os.Exit(1)
	}
	for _, path := range flag.Args() {
		if *cat {
			b, err := m.NS.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "9ls: %s: %v\n", path, err)
				continue
			}
			os.Stdout.Write(b)
			continue
		}
		d, err := m.NS.Stat(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "9ls: %s: %v\n", path, err)
			continue
		}
		if !d.IsDir() {
			printEntry(d)
			continue
		}
		ents, err := m.NS.ReadDir(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "9ls: %s: %v\n", path, err)
			continue
		}
		for _, e := range ents {
			printEntry(e)
		}
	}
}

func printEntry(d vfs.Dir) {
	t := "-"
	if d.IsDir() {
		t = "d"
	}
	fmt.Printf("%s%s %-8s %-8s %8d %s\n", t, permString(d.Mode), d.Uid, d.Gid, d.Length, d.Name)
}

func permString(m uint32) string {
	const rwx = "rwxrwxrwx"
	out := []byte("---------")
	for i := range 9 {
		if m&(1<<uint(8-i)) != 0 {
			out[i] = rwx[i]
		}
	}
	return string(out)
}
