// Command csquery reproduces the paper's ndb/csquery sessions (§4.2):
// it boots the paper's world, then prompts for symbolic names to write
// to /net/cs and prints the replies.
//
//	% csquery -on helix
//	> net!helix!9fs
//	/net/il/clone 135.104.9.31!17008
//	/net/dk/clone nj/astro/helix!9fs
//	> net!$auth!rexauth
//	/net/il/clone 135.104.9.34!17021
//	/net/dk/clone nj/astro/p9auth!rexauth
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	machine := flag.String("on", "helix", "machine whose connection server to query")
	flag.Parse()

	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		fmt.Fprintln(os.Stderr, "csquery:", err)
		os.Exit(1)
	}
	defer w.Close()
	m := w.Machine(*machine)
	if m == nil {
		fmt.Fprintf(os.Stderr, "csquery: no machine %q\n", *machine)
		os.Exit(1)
	}

	// Non-interactive mode: translate the arguments.
	if flag.NArg() > 0 {
		for _, q := range flag.Args() {
			run(m, q)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		q := sc.Text()
		if q != "" {
			run(m, q)
		}
		fmt.Print("> ")
	}
	fmt.Println()
}

func run(m *core.Machine, q string) {
	lines, err := m.NdbQuery(q)
	if err != nil {
		fmt.Println("!", err)
		return
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}
