// Command netstat is the paper's diagnostic story in one program:
// "every aspect of a network is a file", so inspecting a machine's
// networks is reading the stats files out of its /net — and inspecting
// a REMOTE machine's networks is the same reads through an import of
// its /net (§6.1).
//
//	netstat                   every stats file on helix, after a little traffic
//	netstat -m bootes         another machine
//	netstat -json             machine-readable snapshot (obs.ParseStats per file)
//	netstat -import           read helix's /net from philw-gnot over the Datakit
//	netstat -quiet            no warm-up traffic; idle counters
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/ns"
	"repro/internal/obs"
)

func main() {
	machine := flag.String("m", "helix", "machine whose /net to read")
	jsonOut := flag.Bool("json", false, "emit a JSON snapshot instead of the raw files")
	imported := flag.Bool("import", false,
		"read the machine's /net from philw-gnot through a Datakit import (§6.1)")
	quiet := flag.Bool("quiet", false, "skip the warm-up traffic")
	flag.Parse()

	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		fmt.Fprintln(os.Stderr, "netstat:", err)
		os.Exit(1)
	}
	defer w.Close()

	m := w.Machine(*machine)
	if m == nil {
		fmt.Fprintf(os.Stderr, "netstat: no machine %q\n", *machine)
		os.Exit(1)
	}

	if !*quiet {
		warmUp(m)
	}

	// The reading name space: the machine's own, or philw-gnot's
	// after importing the machine's /net over the Datakit. In the
	// import case every read below is a 9P RPC relayed by exportfs —
	// remote diagnosis with no protocol beyond the file system.
	nsp := m.NS
	if *imported {
		gnot := w.Machine("philw-gnot")
		dest := "dk!nj/astro/" + *machine + "!exportfs"
		if _, err := gnot.Import(dest, "/net", "/n/remote/net", ns.MREPL); err != nil {
			fmt.Fprintln(os.Stderr, "netstat: import:", err)
			os.Exit(1)
		}
		nsp = gnot.NS
	}

	prefix := "/net"
	if *imported {
		prefix = "/n/remote/net"
	}
	files := statsFiles(nsp, prefix)

	if *jsonOut {
		snap := map[string]map[string]int64{}
		for _, f := range files {
			b, err := nsp.ReadFile(f.path)
			if err != nil {
				continue
			}
			snap[f.label] = obs.ParseStats(string(b))
		}
		out := map[string]any{"machine": *machine, "stats": snap}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		return
	}

	for _, f := range files {
		b, err := nsp.ReadFile(f.path)
		if err != nil {
			continue
		}
		fmt.Printf("== %s\n", f.label)
		for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
}

type statsFile struct{ label, path string }

// statsFiles walks /net for everything that renders counters: the
// per-protocol device stats files, the machine-wide ipstats and
// mount-driver stats, and each conversation's stats where a device
// serves one (the ether interfaces of Figure 1).
func statsFiles(nsp *ns.Namespace, prefix string) []statsFile {
	var out []statsFile
	if _, err := nsp.Stat(prefix + "/ipstats"); err == nil {
		out = append(out, statsFile{"/net/ipstats", prefix + "/ipstats"})
	}
	ents, err := nsp.ReadDir(prefix)
	if err != nil {
		return out
	}
	var names []string
	seen := map[string]bool{}
	for _, e := range ents {
		if e.IsDir() && !seen[e.Name] {
			seen[e.Name] = true
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := prefix + "/" + name
		if _, err := nsp.Stat(dir + "/stats"); err == nil {
			out = append(out, statsFile{"/net/" + name + "/stats", dir + "/stats"})
		}
		subs, err := nsp.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, s := range subs {
			if !s.IsDir() {
				continue
			}
			conv := dir + "/" + s.Name
			if _, err := nsp.Stat(conv + "/stats"); err == nil {
				out = append(out, statsFile{
					"/net/" + name + "/" + s.Name + "/stats", conv + "/stats"})
			}
		}
	}
	return out
}

// warmUp pushes a little traffic through the machine's networks so
// the snapshot shows live counters: one TCP and one IL echo exchange
// against helix's echo service, when the machine can reach it.
func warmUp(m *core.Machine) {
	for _, net := range []string{"tcp", "il"} {
		conn, err := dialer.Dial(m.NS, net+"!helix!echo")
		if err != nil {
			continue
		}
		conn.Write([]byte("netstat warm-up over " + net))
		buf := make([]byte, 64)
		conn.Read(buf)
		conn.Close()
	}
}
